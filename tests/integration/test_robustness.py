"""Robustness properties of the optimizer and engine: order
independence, idempotence, and degenerate-input behaviour."""

import pytest

from repro.datalog import Database, Program, parse
from repro.engine import evaluate
from repro.core import delete_rules, optimize
from repro.workloads.edb import random_edb
from repro.workloads.paper_examples import (
    adorned_from_text,
    example5_adorned_text,
    example7_adorned,
)


class TestOrderIndependence:
    """Deletion picks rules in index order; the *semantics* of the
    result must not depend on the input rule order."""

    @pytest.mark.parametrize("rotation", [1, 2, 3])
    def test_example7_rotations(self, rotation):
        base = example7_adorned()
        rotated = base.with_rules(
            base.rules[rotation:] + base.rules[:rotation]
        )
        r1 = delete_rules(base, use_sagiv=False, use_chase=False)
        r2 = delete_rules(rotated, use_sagiv=False, use_chase=False)
        p1, p2 = r1.program.to_program(), r2.program.to_program()
        for seed in range(3):
            db = random_edb(p1, rows=15, domain=7, seed=seed)
            assert evaluate(p1, db).answers() == evaluate(p2, db).answers()

    @pytest.mark.parametrize("rotation", [1, 2, 3])
    def test_example6_rotations(self, rotation):
        base = adorned_from_text(example5_adorned_text())
        rotated = base.with_rules(base.rules[rotation:] + base.rules[:rotation])
        r1 = delete_rules(base)
        r2 = delete_rules(rotated)
        p1, p2 = r1.program.to_program(), r2.program.to_program()
        for seed in range(3):
            db = random_edb(p1, rows=15, domain=7, seed=seed)
            assert evaluate(p1, db).answers() == evaluate(p2, db).answers()


class TestIdempotence:
    def test_delete_rules_fixpoint(self):
        program = adorned_from_text(example5_adorned_text())
        once = delete_rules(program)
        twice = delete_rules(once.program)
        assert twice.deleted == ()
        assert str(twice.program) == str(once.program)

    def test_reoptimizing_optimized_program_is_safe(self):
        original = parse(
            """
            query(X) :- a(X, Y).
            a(X, Y) :- p(X, Z), a(Z, Y).
            a(X, Y) :- p(X, Y).
            ?- query(X).
            """
        )
        first = optimize(original)
        second = optimize(first.program)
        for seed in range(3):
            db = random_edb(original, rows=20, domain=8, seed=seed)
            assert second.answers(db) == first.answers(db)


class TestDegenerateInputs:
    def test_single_exit_rule_program(self):
        result = optimize(parse("q(X) :- e(X, Y). ?- q(X)."))
        db = Database.from_dict({"e": [(1, 2)]})
        assert result.answers(db) == {(1,)}

    def test_query_over_constant_only(self):
        result = optimize(parse("q(X) :- e(X). ?- q(1)."))
        db = Database.from_dict({"e": [(1,), (2,)]})
        assert result.answers(db) == result.reference_answers(db)

    def test_all_existential_query(self):
        # "is there anything at all?" — every argument anonymous
        result = optimize(parse("q(X, Y) :- e(X, Y). ?- q(_, _)."))
        db = Database.from_dict({"e": [(1, 2)]})
        assert result.answers(db) == {()}
        empty = Database()
        assert result.answers(empty) == frozenset()

    def test_arity_zero_query(self):
        result = optimize(parse("some :- e(X, Y). ?- some."))
        db = Database.from_dict({"e": [(1, 2)]})
        assert result.answers(db) == {()}

    def test_builtin_only_body(self):
        program = parse("truth(1) :- lt(1, 2). ?- truth(X).")
        assert evaluate(program, Database()).answers() == {(1,)}
        program_false = parse("truth(1) :- lt(2, 1). ?- truth(X).")
        assert evaluate(program_false, Database()).answers() == frozenset()

    def test_duplicate_rules_collapse(self):
        result = optimize(
            parse(
                """
                q(X) :- e(X, Y).
                q(X) :- e(X, Y).
                ?- q(X).
                """
            )
        )
        assert len(result.program) == 1

    def test_self_loop_rule_removed(self):
        result = optimize(
            parse(
                """
                q(X) :- q(X).
                q(X) :- e(X).
                ?- q(X).
                """
            )
        )
        db = Database.from_dict({"e": [(1,)]})
        assert result.answers(db) == {(1,)}
        assert len(result.program) == 1

    def test_empty_program_with_query_rejected(self):
        from repro.datalog import TransformError

        with pytest.raises(TransformError):
            optimize(Program((), parse("?- q(X). x(Y) :- z(Y).").query))
