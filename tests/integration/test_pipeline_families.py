"""The pipeline over every workload family: equivalence + never-worse.

This is the broad-coverage complement to the per-example tests: every
structural family the paper's optimizations interact with goes through
the full pipeline, and the result must (a) compute the same projected
answers as the original on batches of random databases, and (b) never
do more total derivation work.
"""

import pytest

from repro.engine import evaluate
from repro.core.pipeline import optimize
from repro.workloads.edb import random_edb
from repro.workloads.families import all_families

FAMILIES = all_families()


@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_pipeline_equivalence(name):
    program = FAMILIES[name]
    result = optimize(program)
    for seed in range(4):
        db = random_edb(program, rows=18, domain=8, seed=seed)
        assert result.answers(db) == result.reference_answers(db), (name, seed)


@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_pipeline_never_more_work(name):
    program = FAMILIES[name]
    result = optimize(program)
    db = random_edb(program, rows=30, domain=10, seed=9)
    original = evaluate(program, db).stats
    optimized = result.evaluate(db).stats
    assert optimized.derivations <= original.derivations, name


@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_final_program_is_valid(name):
    result = optimize(FAMILIES[name])
    result.program.validate()


def test_family_catalog_is_well_formed():
    for name, program in FAMILIES.items():
        program.validate()
        assert program.query is not None, name
