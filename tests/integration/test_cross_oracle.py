"""Three-way oracle agreement across the workload families.

Every family is evaluated by (a) the semi-naive bottom-up engine,
(b) the naive bottom-up engine, (c) the tabled top-down engine, and
(d) the optimized program — all four must agree on the projected query
answer.  Where the query binds a constant, Magic Sets joins as a fifth
voice.  Independent implementations agreeing across the whole workload
space is the strongest correctness signal the suite produces.
"""

import pytest

from repro.core import optimize
from repro.engine import EngineOptions, evaluate
from repro.engine.topdown import evaluate_topdown
from repro.rewriting import magic_sets
from repro.workloads.edb import random_edb
from repro.workloads.families import all_families

FAMILIES = all_families()


def projected(program, raw_answers, needed_positions):
    return frozenset(tuple(row[i] for i in needed_positions) for row in raw_answers)


@pytest.mark.parametrize("name", sorted(FAMILIES))
@pytest.mark.parametrize("seed", [0, 1])
def test_engines_agree(name, seed):
    program = FAMILIES[name]
    db = random_edb(program, rows=16, domain=8, seed=seed)

    semi = evaluate(program, db).answers()
    naive = evaluate(program, db, EngineOptions(strategy="naive")).answers()
    assert semi == naive, "naive disagrees"

    if not program.has_negation():
        topdown = evaluate_topdown(program, db).answers
        assert semi == topdown, "top-down disagrees"


@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_optimized_agrees(name):
    program = FAMILIES[name]
    result = optimize(program)
    for seed in (0, 1):
        db = random_edb(program, rows=16, domain=8, seed=seed)
        assert result.answers(db) == result.reference_answers(db), (name, seed)


def test_magic_joins_the_chorus():
    program = FAMILIES["bounded_source_tc"]
    rewritten = magic_sets(program)
    assert rewritten.changed
    for seed in (0, 1, 2):
        db = random_edb(program, rows=20, domain=10, seed=seed)
        reference = evaluate(program, db).answers()
        assert evaluate(rewritten.program, db).answers() == reference
        assert evaluate_topdown(program, db).answers == reference
