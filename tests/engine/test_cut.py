"""Tests for the boolean-cut mechanism (section 3.1 runtime support).

A rule defining an arity-0 (boolean) predicate is retired from the
fixpoint once the predicate becomes true — "a rule defining a boolean
variable can be removed from the fixpoint computation once the variable
becomes true".
"""

from repro.datalog import Database, parse
from repro.engine import EngineOptions, evaluate
from repro.workloads.graphs import chain


PROGRAM = parse(
    """
    answer(X) :- wanted(X, Y), guard.
    guard :- tc(X, Y), mark(Y).
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- answer(X).
    """
)


def db_with_mark(n=20):
    db = Database.from_dict(
        {"edge": chain(n), "wanted": [(1, 2), (3, 4)], "mark": [(n - 1,)]}
    )
    return db


class TestCut:
    def test_answers_unchanged_by_cut(self):
        db = db_with_mark()
        plain = evaluate(PROGRAM, db)
        cut = evaluate(PROGRAM, db, EngineOptions(cut_predicates={"guard"}))
        assert plain.answers() == cut.answers() == {(1,), (3,)}

    def test_cut_retires_rule(self):
        db = db_with_mark()
        cut = evaluate(PROGRAM, db, EngineOptions(cut_predicates={"guard"}))
        assert cut.stats.rules_retired >= 1

    def test_cut_reduces_work(self):
        db = db_with_mark(30)
        plain = evaluate(PROGRAM, db)
        cut = evaluate(PROGRAM, db, EngineOptions(cut_predicates={"guard"}))
        assert cut.stats.rule_firings <= plain.stats.rule_firings
        assert cut.stats.duplicates <= plain.stats.duplicates

    def test_boolean_never_true_no_retire(self):
        db = Database.from_dict(
            {"edge": chain(5), "wanted": [(1, 2)], "mark": [(999,)]}
        )
        cut = evaluate(PROGRAM, db, EngineOptions(cut_predicates={"guard"}))
        assert cut.answers() == frozenset()
        assert cut.stats.rules_retired == 0

    def test_cut_with_naive_strategy(self):
        db = db_with_mark()
        cut = evaluate(
            PROGRAM,
            db,
            EngineOptions(strategy="naive", cut_predicates={"guard"}),
        )
        assert cut.answers() == {(1,), (3,)}
        assert cut.stats.rules_retired >= 1

    def test_multiple_booleans(self):
        program = parse(
            """
            out(X) :- item(X), b1, b2.
            b1 :- p(X).
            b2 :- q(X).
            ?- out(X).
            """
        )
        db = Database.from_dict({"item": [(1,)], "p": [(5,)], "q": [(6,)]})
        result = evaluate(
            program, db, EngineOptions(cut_predicates={"b1", "b2"})
        )
        assert result.answers() == {(1,)}
        assert result.stats.rules_retired == 2

    def test_boolean_false_blocks_answer(self):
        program = parse(
            """
            out(X) :- item(X), b1.
            b1 :- p(X).
            ?- out(X).
            """
        )
        db = Database.from_dict({"item": [(1,)], "q": [(6,)]})
        result = evaluate(program, db, EngineOptions(cut_predicates={"b1"}))
        assert result.answers() == frozenset()
