"""Tests for the tabled top-down evaluator."""

import pytest

from repro.datalog import Database, ValidationError, parse
from repro.engine import evaluate
from repro.engine.topdown import evaluate_topdown
from repro.workloads.graphs import chain, cycle, random_digraph


TC = parse(
    """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
    """
)


def bound_query(c):
    return parse(f"tc(X, Y) :- e. ?- tc({c}, Y).").query


class TestAgreementWithBottomUp:
    @pytest.mark.parametrize(
        "edges",
        [chain(10), cycle(6), random_digraph(15, 35, seed=1), []],
        ids=["chain", "cycle", "random", "empty"],
    )
    def test_full_query(self, edges):
        db = Database()
        db.ensure("edge", 2).update(edges)
        assert evaluate_topdown(TC, db).answers == evaluate(TC, db).answers()

    @pytest.mark.parametrize("source", [0, 5, 9])
    def test_bound_query(self, source):
        db = Database.from_dict({"edge": chain(10)})
        program = TC.with_query(bound_query(source))
        td = evaluate_topdown(program, db)
        assert td.answers == evaluate(program, db).answers()

    def test_cyclic_data_terminates(self):
        # plain SLD would loop on a cycle; tabling must not
        db = Database.from_dict({"edge": cycle(5)})
        program = TC.with_query(bound_query(0))
        td = evaluate_topdown(program, db)
        assert td.answers == {(i,) for i in range(5)}

    def test_left_linear_recursion(self):
        program = parse(
            """
            tc(X, Y) :- tc(X, Z), edge(Z, Y).
            tc(X, Y) :- edge(X, Y).
            ?- tc(0, Y).
            """
        )
        db = Database.from_dict({"edge": chain(8)})
        assert (
            evaluate_topdown(program, db).answers
            == evaluate(program, db).answers()
        )

    def test_nonlinear_recursion(self):
        program = parse(
            """
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), t(Z, Y).
            ?- t(X, Y).
            """
        )
        db = Database.from_dict({"e": random_digraph(10, 25, seed=3)})
        assert (
            evaluate_topdown(program, db).answers
            == evaluate(program, db).answers()
        )

    def test_same_generation(self):
        program = parse(
            """
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            ?- sg(1, Y).
            """
        )
        from repro.workloads.edb import random_edb

        for seed in range(3):
            db = random_edb(program, rows=15, domain=8, seed=seed)
            assert (
                evaluate_topdown(program, db).answers
                == evaluate(program, db).answers()
            )

    def test_builtins(self):
        program = parse(
            """
            up_path(X, Y) :- edge(X, Y), lt(X, Y).
            up_path(X, Y) :- edge(X, Z), lt(X, Z), up_path(Z, Y).
            ?- up_path(0, Y).
            """
        )
        db = Database.from_dict({"edge": [(0, 2), (2, 1), (2, 4), (1, 3)]})
        assert evaluate_topdown(program, db).answers == {(2,), (4,)}


class TestGoalDirection:
    def test_explores_only_reachable_subgoals(self):
        # bound query from the chain's tail: few subgoals, few facts
        db = Database.from_dict({"edge": chain(30)})
        program = TC.with_query(bound_query(25))
        td = evaluate_topdown(program, db)
        bu = evaluate(program, db)
        assert td.stats.facts_derived < bu.stats.facts_derived / 10
        assert td.subgoal_count <= 6  # tc(25,_) ... tc(29,_)

    def test_repeated_variable_query(self):
        program = TC.with_query(parse("?- tc(X, X). x :- e.").query)
        db = Database.from_dict({"edge": cycle(4) + [(8, 9)]})
        assert evaluate_topdown(program, db).answers == {(0,), (1,), (2,), (3,)}

    def test_tables_exposed(self):
        db = Database.from_dict({"edge": chain(5)})
        program = TC.with_query(bound_query(2))
        td = evaluate_topdown(program, db)
        assert ("tc", (2, None)) in td.tables


class TestRestrictions:
    def test_requires_query(self):
        with pytest.raises(ValidationError):
            evaluate_topdown(TC.with_query(None), Database())

    def test_rejects_negation(self):
        program = parse(
            """
            p(X) :- n(X), not q(X).
            q(X) :- m(X).
            ?- p(X).
            """
        )
        with pytest.raises(ValidationError):
            evaluate_topdown(program, Database())

    def test_pass_cap(self):
        from repro.datalog import EvaluationError

        db = Database.from_dict({"edge": chain(20)})
        with pytest.raises(EvaluationError):
            evaluate_topdown(TC, db, max_passes=1)


class TestUniformInputs:
    def test_initial_idb_facts_respected(self):
        # uniform-equivalence convention: tc starts non-empty
        db = Database.from_dict({"edge": [(1, 2)], "tc": [(9, 10), (2, 7)]})
        td = evaluate_topdown(TC, db)
        assert td.answers == evaluate(TC, db).answers()
        assert (9, 10) in td.answers
        assert (1, 7) in td.answers  # edge(1,2) joined with seeded tc(2,7)

    def test_initial_idb_facts_with_bound_query(self):
        db = Database.from_dict({"edge": [(1, 2)], "tc": [(2, 7)]})
        program = TC.with_query(bound_query(1))
        td = evaluate_topdown(program, db)
        assert td.answers == evaluate(program, db).answers()
