"""Compiled rule kernels: codegen shape, caching, fallback, and
bit-identical agreement with the plan interpreter."""

import cProfile
import pstats

import pytest

from repro.datalog import Database, parse, parse_rule
from repro.datalog.terms import Constant, Variable
from repro.engine import (
    EngineOptions,
    compile_rule,
    evaluate,
    kernel_cache_stats,
    kernel_source,
    rule_kernel,
)
from repro.engine.kernel import KernelError


def _compiled(src: str, index: int = 0):
    return compile_rule(parse_rule(src), index)


# -- generated source shape ---------------------------------------------------


class TestKernelSource:
    def test_slot_registers_replace_substitution_dicts(self):
        cr = _compiled("h(X, Z) :- a(X, Y), b(Y, Z).")
        src = kernel_source(cr)
        # every variable is a compile-time register; no dict in sight
        assert "r0 = row0[0]" in src
        assert "dict" not in src
        assert "subst" not in src

    def test_constants_inlined_as_literals(self):
        cr = _compiled("h(Y) :- e(1, Y), f(Y, 'abc').")
        src = kernel_source(cr)
        assert "(1,)" in src  # constant index key for e
        assert "'abc'" in src  # constant key for f

    def test_index_lookup_emitted_directly(self):
        cr = _compiled("h(X, Z) :- a(X, Y), b(Y, Z).")
        src = kernel_source(cr)
        assert ".lookup((0,)," in src
        assert "index_probes" in src

    def test_existential_cut_emits_break(self):
        # Y is dead after a(X, Y): the literal is an existence test
        cr = _compiled("h(X) :- p(X), a(X, Y).")
        assert any(p.existential for p in cr.plan)
        assert "break" in kernel_source(cr)

    def test_non_existential_plan_has_no_break(self):
        cr = _compiled("h(X, Y) :- a(X, Y).")
        assert "break" not in kernel_source(cr)

    def test_repeated_free_variable_compiles_to_guard(self):
        cr = _compiled("h(X) :- a(X, X).")
        src = kernel_source(cr)
        assert "if row0[1] != r0: continue" in src

    def test_builtin_and_negation_in_kernel_body(self):
        r = parse_rule("h(X) :- a(X, Y), lt(X, Y), not bad(X).")
        cr = compile_rule(r, 0)
        src = kernel_source(cr)
        assert "_bi_lt(r0, r1)" in src
        assert "nrel0" in src and "in nrel0" in src

    def test_delta_plan_reads_frontier(self):
        cr = _compiled("h(X, Y) :- e(X, Z), t(Z, Y).")
        src = kernel_source(cr, 1)  # delta on t
        assert "delta.all_rows()" in src or "delta.lookup(" in src

    def test_scan_mode_emits_filtered_full_scan(self):
        cr = _compiled("h(X, Z) :- a(X, Y), b(Y, Z).")
        src = kernel_source(cr, use_indexes=False)
        assert ".lookup(" not in src
        assert "scan_fallbacks" in src
        assert "if row1[0] != r1: continue" in src

    def test_provenance_variant_yields_rows_in_body_order(self):
        cr = _compiled("h(X, Y) :- e(X, Z), t(Z, Y).")
        src = kernel_source(cr, 1, record_rows=True)
        # delta plan starts at body literal 1, but rows come back in
        # original body order: (e-row, t-row)
        assert "yield (r2, r1), (row1, row0)" in src


# -- caching and fallback -----------------------------------------------------


class TestKernelCache:
    def test_kernel_memoized_per_rule(self):
        cr = _compiled("h(X, Z) :- a(X, Y), b(Y, Z).")
        k1 = rule_kernel(cr)
        k2 = rule_kernel(cr)
        assert k1 is k2

    def test_structurally_identical_rules_share_one_kernel(self):
        before = kernel_cache_stats()
        a = _compiled("h(X, Z) :- a(X, Y), b(Y, Z).")
        b = _compiled("h(X, Z) :- a(X, Y), b(Y, Z).")
        ka, kb = rule_kernel(a), rule_kernel(b)
        assert ka is kb  # same source => same compiled function
        after = kernel_cache_stats()
        assert after["compiles"] + after["hits"] > before["compiles"] + before["hits"]

    def test_unsupported_constant_falls_back_to_interpreter(self):
        from repro.datalog.ast import Atom, Rule

        weird = Constant((1, 2))  # no inline literal form
        rule = Rule(
            Atom("h", (Variable("X"),)),
            (Atom("p", (Variable("X"), weird)),),
        )
        cr = compile_rule(rule, 0)
        with pytest.raises(KernelError):
            kernel_source(cr)
        assert rule_kernel(cr) is None  # engine falls back per rule

    def test_fallback_rule_still_evaluates_via_interpreter(self):
        from repro.datalog.ast import Atom, Program, Rule

        weird = Constant((1, 2))
        rule = Rule(Atom("h", (Variable("X"),)), (Atom("p", (Variable("X"), weird)),))
        program = Program((rule,), query=Atom("h", (Variable("X"),)))
        db = Database.from_dict({"p": [(7, (1, 2)), (8, (9, 9))]})
        res = evaluate(program, db)
        assert res.answers() == {(7,)}
        assert res.stats.kernel_launches == 0


# -- engine integration -------------------------------------------------------

TC = """
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
?- tc(X, Y).
"""

EDGES = {"edge": [(1, 2), (2, 3), (3, 4), (4, 1), (2, 4)]}


class TestKernelEngine:
    def _pair(self, src, data, **common):
        program = parse(src)
        kern = evaluate(
            program, Database.from_dict(data),
            EngineOptions(record_provenance=True, **common),
        )
        interp = evaluate(
            program, Database.from_dict(data),
            EngineOptions(record_provenance=True, use_kernels=False, **common),
        )
        return kern, interp

    def test_kernel_path_actually_runs(self):
        kern, interp = self._pair(TC, EDGES)
        assert kern.stats.kernel_launches > 0
        assert interp.stats.kernel_launches == 0

    @pytest.mark.parametrize("use_indexes", [True, False])
    def test_bit_identical_with_interpreter(self, use_indexes):
        kern, interp = self._pair(TC, EDGES, use_indexes=use_indexes)
        assert kern.answers() == interp.answers()
        assert kern.provenance == interp.provenance
        assert kern.stats.as_dict(engine_invariant=True) == interp.stats.as_dict(
            engine_invariant=True
        )

    def test_cli_no_kernel_flag(self, tmp_path, capsys):
        from repro.cli import main

        prog = tmp_path / "p.dl"
        facts = tmp_path / "f.dl"
        prog.write_text("tc(X, Y) :- e(X, Y).\ntc(X, Y) :- e(X, Z), tc(Z, Y).\n?- tc(1, Y).\n")
        facts.write_text("e(1, 2).\ne(2, 3).\n")
        assert main(["run", str(prog), str(facts)]) == 0
        with_kernels = capsys.readouterr().out
        assert main(["run", str(prog), str(facts), "--no-kernel"]) == 0
        assert capsys.readouterr().out == with_kernels

    def test_kernel_halves_interpreter_frame_allocations(self):
        """The headline claim: >= 2x fewer Python function/generator
        frames on the join hot path (measured as profiled call count)."""
        program = parse(TC)
        db = Database.from_dict(
            {"edge": [(i, (i * 7 + 1) % 40) for i in range(40)] + [(i, i + 1) for i in range(40)]}
        )

        def calls(options):
            prof = cProfile.Profile()
            prof.enable()
            evaluate(program, db.copy(), options)
            prof.disable()
            return pstats.Stats(prof).total_calls

        kernel_calls = calls(EngineOptions())
        interp_calls = calls(EngineOptions(use_kernels=False))
        assert kernel_calls * 2 <= interp_calls, (kernel_calls, interp_calls)
