"""Unit tests for the columnar data plane: the constant dictionary,
per-relation column stores, copy-on-write privatization, batch-kernel
compile gates, and encoded bulk insertion.

Full-run parity (batch kernels vs tuple kernels vs interpreter on
every engine-invariant counter) lives in
``tests/property/test_columnar_differential.py``; this file owns the
substrate-level contracts those runs rest on.
"""

import pytest

from repro.datalog.columnar import (
    ColumnStore,
    ConstantDictionary,
    global_dictionary,
    numpy_available,
)
from repro.datalog.database import Database, Relation
from repro.datalog.parser import parse
from repro.engine import EngineOptions, evaluate
from repro.engine.batch_kernel import (
    BatchKernelError,
    batch_kernel_cache_stats,
    batch_kernel_source,
    batch_rule_kernel,
    clear_batch_kernel_cache,
)
from repro.engine.plan import compile_rule


# -- constant dictionary -----------------------------------------------------


class TestConstantDictionary:
    def test_intern_is_dense_and_stable(self):
        d = ConstantDictionary()
        ids = [d.intern(v) for v in ("a", "b", "a", 7, "b")]
        assert ids == [0, 1, 0, 2, 1]
        assert len(d) == 3

    def test_round_trip(self):
        d = ConstantDictionary()
        row = ("x", 3, None, "x")
        assert d.decode_row(d.intern_row(row)) == row

    def test_equal_values_share_an_id(self):
        # interning is keyed by ==/hash exactly like the raw row sets,
        # so 1, 1.0 and True conflate in both representations
        d = ConstantDictionary()
        assert d.intern(1) == d.intern(1.0) == d.intern(True)

    def test_clear_bumps_epoch_and_forgets(self):
        d = ConstantDictionary()
        d.intern("a")
        epoch = d.epoch
        d.clear()
        assert d.epoch == epoch + 1
        assert len(d) == 0
        assert d.intern("b") == 0

    def test_global_dictionary_is_shared(self):
        assert global_dictionary() is global_dictionary()


# -- column store ------------------------------------------------------------


class TestColumnStore:
    def test_columns_mirror_rows(self):
        d = ConstantDictionary()
        rows = [("a", "b"), ("b", "c")]
        store = ColumnStore(d, 2, rows)
        assert len(store) == 2
        decoded = {
            d.decode_row((store.columns[0][i], store.columns[1][i]))
            for i in range(2)
        }
        assert decoded == set(rows)

    def test_row_set_membership(self):
        d = ConstantDictionary()
        store = ColumnStore(d, 2, [("a", "b")])
        assert d.intern_row(("a", "b")) in store.row_set
        assert d.intern_row(("b", "a")) not in store.row_set

    def test_encoded_index_mirrors_raw_posting_order(self):
        rel = Relation(2, [(i % 3, i) for i in range(30)])
        raw = rel.index_for((0,))
        enc = rel.encoded_index((0,))
        d = global_dictionary()
        for key, posting in raw.items():
            enc_posting = enc[d.intern(key[0])]
            assert [d.decode_row(e) for e in enc_posting] == posting

    def test_encoded_index_single_position_uses_scalar_keys(self):
        rel = Relation(2, [("a", "b")])
        enc = rel.encoded_index((0,))
        assert all(isinstance(k, int) for k in enc)
        both = rel.encoded_index((0, 1))
        assert all(isinstance(k, tuple) for k in both)

    def test_scan_rows_track_relation_order_and_version(self):
        rel = Relation(1, [(i,) for i in range(5)])
        d = global_dictionary()
        first = rel.encoded_rows()
        assert [d.decode_row(e) for e in first] == list(rel)
        assert rel.encoded_rows() is first  # cached at this version
        rel.add((99,))
        second = rel.encoded_rows()
        assert second is not first
        assert [d.decode_row(e) for e in second] == list(rel)

    def test_numpy_column_view(self):
        if not numpy_available():
            pytest.skip("numpy not available")
        d = ConstantDictionary()
        store = ColumnStore(d, 2, [("a", "b"), ("c", "b")])
        col = store.numpy_column(1)
        assert list(col) == list(store.columns[1])

    def test_epoch_change_rebuilds_store(self):
        rel = Relation(1, [("keep",)])
        store = rel.column_store()
        global_dictionary().clear()
        rebuilt = rel.column_store()
        assert rebuilt is not store
        assert rebuilt.epoch == global_dictionary().epoch
        assert global_dictionary().decode_row(next(iter(rebuilt.row_set))) == (
            "keep",
        )

    def test_retraction_drops_store(self):
        rel = Relation(1, [(1,), (2,)])
        rel.column_store()
        rel.discard((1,))
        assert rel._store is None
        assert {global_dictionary().decode_row(e) for e in rel.encoded_rows()} == {
            (2,)
        }


# -- copy-on-write privatization (satellite: Relation.copy) -----------------


class TestCopyOnWrite:
    def test_copies_share_store_until_first_write(self):
        rel = Relation(2, [("a", "b")])
        store = rel.column_store()
        twin = rel.copy()
        assert twin._store is store and twin._store_shared
        assert rel._store_shared

    def test_write_to_copy_does_not_leak_into_original(self):
        rel = Relation(2, [("a", "b")])
        rel.column_store()
        twin = rel.copy()
        twin.add(("x", "y"))
        assert ("x", "y") not in rel
        enc = global_dictionary().intern_row(("x", "y"))
        assert enc not in rel.column_store().row_set
        assert enc in twin.column_store().row_set

    def test_write_to_original_does_not_leak_into_copy(self):
        rel = Relation(2, [("a", "b")])
        rel.column_store()
        twin = rel.copy()
        rel.add(("x", "y"))
        enc = global_dictionary().intern_row(("x", "y"))
        assert enc not in twin.column_store().row_set

    def test_evaluations_sharing_a_database_do_not_cross_talk(self):
        """Two back-to-back columnar evaluations over one database: the
        first run's derived facts (inserted into copy-on-write head
        relations) must not surface in the second run's EDB image."""
        program = parse(
            """
            tc(X,Y) :- edge(X,Y).
            tc(X,Y) :- tc(X,Z), edge(Z,Y).
            ?- tc(X,Y).
            """
        )
        db = Database.from_dict({"edge": [(1, 2), (2, 3), (3, 4)]})
        first = evaluate(program, db, EngineOptions())
        assert db.relation("tc") is None or len(db.relation("tc")) == 0
        second = evaluate(program, db, EngineOptions())
        assert first.answers() == second.answers()
        assert len(db.relation("edge")) == 3


# -- encoded bulk insertion --------------------------------------------------


class TestAddEncodedBatch:
    def test_decodes_and_preserves_input_order(self):
        rel = Relation(2, [("a", "b")])
        rel.index_for((0,))
        d = global_dictionary()
        enc = [d.intern_row(("c", "d")), d.intern_row(("e", "f"))]
        out = rel.add_encoded_batch(enc)
        assert out == [("c", "d"), ("e", "f")]
        assert ("c", "d") in rel and ("e", "f") in rel

    def test_maintains_raw_indexes_like_add(self):
        base = [("a", "b"), ("a", "c")]
        batch = Relation(2, base)
        plain = Relation(2, base)
        batch.index_for((0,))
        plain.index_for((0,))
        d = global_dictionary()
        batch.add_encoded_batch([d.intern_row(("a", "d"))])
        plain.add(("a", "d"))
        assert batch.index_for((0,)) == plain.index_for((0,))
        assert batch.rows() == plain.rows()


# -- batch-kernel compile gates ----------------------------------------------


def _compiled(text, index=0, sizes=None):
    program = parse(text)
    return compile_rule(program.rules[index], index, sizes=sizes)


class TestBatchKernelGates:
    def test_plain_join_rule_compiles(self):
        cr = _compiled("p(X,Y) :- e(X,Z), f(Z,Y).\n?- p(X,Y).")
        assert batch_rule_kernel(cr) is not None
        assert "stats.batch_probes" in batch_kernel_source(cr)

    def test_self_referential_naive_plan_is_gated(self):
        # the tuple engine inserts per yield while enumerating, so a
        # step reading the head relation sees mid-firing inserts the
        # batch snapshot cannot reproduce
        cr = _compiled(
            "tc(X,Y) :- tc(X,Z), e(Z,Y).\n?- tc(X,Y).",
            sizes={"tc": 10, "e": 10},
        )
        with pytest.raises(BatchKernelError, match="head relation"):
            batch_kernel_source(cr)
        assert batch_rule_kernel(cr) is None

    def test_delta_step_on_head_is_allowed(self):
        # the frontier at delta step 0 is a frozen snapshot in both
        # engines, so linear recursion stays batched
        cr = _compiled(
            "tc(X,Y) :- tc(X,Z), e(Z,Y).\n?- tc(X,Y).",
            sizes={"tc": 10, "e": 10},
        )
        deltas = [
            pid
            for pid in range(len(cr.delta_plans))
            if batch_rule_kernel(cr, pid) is not None
        ]
        assert deltas, "no delta plan of a linear recursion was batchable"

    def test_existential_repeat_is_gated(self):
        cr = _compiled("p(X) :- e(X), f(Y,Y).\n?- p(X).")
        with pytest.raises(BatchKernelError, match="repeated"):
            batch_kernel_source(cr)

    def test_existential_bound_scan_without_indexes_is_gated(self):
        cr = _compiled("p(X) :- e(X), f(X,Y).\n?- p(X).")
        assert batch_rule_kernel(cr, use_indexes=True) is not None
        assert batch_rule_kernel(cr, use_indexes=False) is None

    def test_source_cache_hits_on_identical_shapes(self):
        clear_batch_kernel_cache()
        a = _compiled("p(X,Y) :- e(X,Z), f(Z,Y).\n?- p(X,Y).")
        b = _compiled("p(X,Y) :- e(X,Z), f(Z,Y).\n?- p(X,Y).")
        batch_rule_kernel(a)
        before = batch_kernel_cache_stats()
        batch_rule_kernel(b)
        after = batch_kernel_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["compiles"] == before["compiles"]


# -- engine-level integration ------------------------------------------------


class TestColumnarEngine:
    def test_columnar_runs_report_batch_work(self):
        program = parse(
            """
            tc(X,Y) :- edge(X,Y).
            tc(X,Y) :- tc(X,Z), edge(Z,Y).
            ?- tc(X,Y).
            """
        )
        db = Database.from_dict({"edge": [(i, i + 1) for i in range(8)]})
        res = evaluate(program, db, EngineOptions())
        assert res.stats.batch_probes > 0
        assert res.stats.batch_rows > 0
        assert res.stats.dict_size > 0
        # the self-referential naive plan fell back to the tuple kernel
        assert res.stats.columnar_fallbacks > 0

    def test_no_columnar_option_disables_batching(self):
        program = parse("p(X) :- e(X).\n?- p(X).")
        db = Database.from_dict({"e": [(1,), (2,)]})
        res = evaluate(program, db, EngineOptions(use_columnar=False))
        assert res.stats.batch_probes == 0
        assert res.stats.dict_size == 0

    def test_provenance_routes_around_batch_kernels(self):
        program = parse("p(X) :- e(X).\n?- p(X).")
        db = Database.from_dict({"e": [(1,), (2,)]})
        res = evaluate(program, db, EngineOptions(record_provenance=True))
        assert res.stats.batch_probes == 0
        assert res.provenance is not None
