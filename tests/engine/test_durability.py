"""Unit tests for the durable session runtime: WAL, snapshots, recovery.

The recovery *oracle* (``tests/oracle/test_recovery.py``) proves
end-to-end bit-identity across crash points; this suite pins the
mechanism — frame layout, fsync policies, torn-tail tolerance vs
mid-file refusal, compaction retention, the degradation rungs, and the
interaction between snapshots and the interning dictionary's epochs.
"""

import json
import os
import struct
import zlib

import pytest

from repro.datalog import (
    Database,
    DurabilityError,
    RecoveryError,
    parse,
)
from repro.datalog.columnar import global_dictionary
from repro.engine import (
    DurabilityConfig,
    EngineOptions,
    FaultPlan,
    IncrementalSession,
    WalCrash,
    WriteAheadLog,
    clear_prepared_cache,
    evaluate,
    flag_signature,
    list_snapshots,
    load_snapshot,
    parse_fault_specs,
    read_wal,
    recover,
)
from repro.engine.durability import _FRAME, WAL_MAGIC, program_signature
from repro.engine.statistics import EvalStats

TC = """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(1, Y).
"""


@pytest.fixture
def program():
    return parse(TC)


@pytest.fixture
def edb():
    return Database.from_dict({"edge": [(1, 2), (2, 3)]})


def _config(tmp_path, **kw):
    kw.setdefault("snapshot_every", 2)
    return DurabilityConfig(wal_path=str(tmp_path / "s.wal"), **kw)


class TestConfig:
    def test_validation(self, tmp_path):
        with pytest.raises(DurabilityError):
            DurabilityConfig(wal_path="x", fsync="sometimes")
        with pytest.raises(DurabilityError):
            DurabilityConfig(wal_path="x", snapshot_every=-1)
        with pytest.raises(DurabilityError):
            DurabilityConfig(wal_path="x", keep_snapshots=0)
        with pytest.raises(DurabilityError):
            DurabilityConfig(wal_path="x", on_flag_drift="pray")

    @pytest.mark.parametrize("fsync", ["always", "batch", "off"])
    def test_fsync_policies_all_append(self, tmp_path, fsync):
        wal = WriteAheadLog.create(
            str(tmp_path / "w"), fsync, "f", "p", 0
        )
        wal.append("insert", {"edge": [(1, 2)]})
        wal.append("retract", {"edge": [(1, 2)]})
        wal.close()
        data = read_wal(str(tmp_path / "w"))
        assert [r["seq"] for r in data.records] == [1, 2]
        assert data.records[0]["facts"] == {"edge": [(1, 2)]}
        assert data.records[1]["kind"] == "retract"
        assert data.torn_offset is None


class TestWalValidation:
    def _write(self, tmp_path, n=3):
        path = str(tmp_path / "w")
        wal = WriteAheadLog.create(path, "batch", "flags", "prog", 0)
        for i in range(n):
            wal.append("insert", {"edge": [(i, i + 1)]})
        wal.close()
        return path

    def test_torn_final_record_tolerated(self, tmp_path):
        path = self._write(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 7)
        data = read_wal(path)
        assert [r["seq"] for r in data.records] == [1, 2]
        assert data.torn_offset is not None

    def test_corrupt_final_payload_is_a_tear(self, tmp_path):
        path = self._write(tmp_path)
        with open(path, "r+b") as f:
            f.seek(-3, os.SEEK_END)
            f.write(b"\xff")
        data = read_wal(path)
        assert [r["seq"] for r in data.records] == [1, 2]
        assert data.torn_offset is not None

    def test_midfile_corruption_refused(self, tmp_path):
        path = self._write(tmp_path)
        data = read_wal(path)
        # flip one byte inside the FIRST record's payload
        with open(path, "rb") as f:
            buf = f.read()
        first = buf.index(b'"seq": 1')
        buf = buf[:first] + b'"seq": 9' + buf[first + 8:]
        with open(path, "wb") as f:
            f.write(buf)
        with pytest.raises(RecoveryError) as exc:
            read_wal(path)
        assert exc.value.reason in ("checksum-mismatch", "sequence-gap")
        assert data.records  # pre-corruption read was fine

    def test_sequence_gap_refused(self, tmp_path):
        path = self._write(tmp_path, n=1)
        skipping = json.dumps(
            {"seq": 5, "kind": "insert", "flags": "flags", "facts": {}},
            sort_keys=True,
        ).encode()
        with open(path, "ab") as f:
            f.write(_FRAME.pack(len(skipping), zlib.crc32(skipping)) + skipping)
            # one more valid-looking record after it, so the gap is
            # mid-file, not a tolerable tail
            f.write(_FRAME.pack(len(skipping), zlib.crc32(skipping)) + skipping)
        with pytest.raises(RecoveryError) as exc:
            read_wal(path)
        assert exc.value.reason == "sequence-gap"
        assert exc.value.record == 5

    def test_record_flag_drift_refused(self, tmp_path):
        path = self._write(tmp_path, n=1)
        drifted = json.dumps(
            {"seq": 2, "kind": "insert", "flags": "OTHER", "facts": {}},
            sort_keys=True,
        ).encode()
        filler = json.dumps(
            {"seq": 3, "kind": "insert", "flags": "flags", "facts": {}},
            sort_keys=True,
        ).encode()
        with open(path, "ab") as f:
            f.write(_FRAME.pack(len(drifted), zlib.crc32(drifted)) + drifted)
            f.write(_FRAME.pack(len(filler), zlib.crc32(filler)) + filler)
        with pytest.raises(RecoveryError) as exc:
            read_wal(path)
        assert exc.value.reason == "flag-drift"

    def test_bad_magic_refused(self, tmp_path):
        path = tmp_path / "not-a-wal"
        path.write_bytes(b"hello world, definitely not a WAL file")
        with pytest.raises(RecoveryError) as exc:
            read_wal(str(path))
        assert exc.value.reason == "bad-header"

    def test_missing_wal_refused(self, tmp_path):
        with pytest.raises(RecoveryError) as exc:
            read_wal(str(tmp_path / "nope"))
        assert exc.value.reason == "missing-wal"


class TestDurableSession:
    def test_counters_and_files(self, tmp_path, program, edb):
        cfg = _config(tmp_path, snapshot_every=2)
        s = IncrementalSession(program, edb, durable=cfg)
        assert s.durable
        assert s.stats.snapshots_written == 1  # the baseline
        s.insert({"edge": [(3, 4)]})
        s.retract({"edge": [(2, 3)]})
        assert s.stats.wal_appends == 2
        assert s.stats.snapshots_written == 2  # policy fired at seq 2
        s.close()
        assert not s.durable
        data = read_wal(cfg.wal_path)
        assert data.header["flags"] == flag_signature(s.options)
        assert data.header["program"] == program_signature(program)

    def test_unloggable_value_rejected_atomically(self, tmp_path, program, edb):
        cfg = _config(tmp_path)
        s = IncrementalSession(program, edb, durable=cfg)
        before_rows = s.facts("edge")
        before_bytes = os.path.getsize(cfg.wal_path)
        with pytest.raises(DurabilityError):
            s.insert({"edge": [((1, 2), 3)]})  # tuple value: not a scalar
        # neither the log nor the state moved
        assert os.path.getsize(cfg.wal_path) == before_bytes
        assert s.facts("edge") == before_rows
        assert s.stats.wal_appends == 0
        # and the session still works
        s.insert({"edge": [(3, 4)]})
        assert (1, 4) in s.facts("tc")
        s.close()

    def test_checkpoint_compacts(self, tmp_path, program, edb):
        cfg = _config(tmp_path, snapshot_every=0, keep_snapshots=2)
        s = IncrementalSession(program, edb, durable=cfg)
        for i in range(5):
            s.insert({"edge": [(10 + i, 11 + i)]})
        assert s.checkpoint() == 5
        assert s.checkpoint() == 5  # idempotent at the same seq
        snaps = list_snapshots(cfg)
        assert len(snaps) <= 2
        data = read_wal(cfg.wal_path)
        # records up to the oldest retained snapshot were truncated
        oldest = int(snaps[-1].name.rsplit("-", 1)[1])
        assert data.base_seq == oldest
        r, report = recover(program, cfg)
        assert r.facts("tc") == s.facts("tc")
        r.close(), s.close()

    def test_wal_size_policy_triggers_snapshot(self, tmp_path, program, edb):
        cfg = _config(tmp_path, snapshot_every=0, max_wal_bytes=1)
        s = IncrementalSession(program, edb, durable=cfg)
        s.insert({"edge": [(3, 4)]})
        assert s.stats.snapshots_written == 2
        s.close()

    def test_non_durable_checkpoint_refused(self, program, edb):
        s = IncrementalSession(program, edb)
        with pytest.raises(DurabilityError):
            s.checkpoint()
        s.close()  # no-op

    def test_snapshot_deferred_when_governor_trips(
        self, tmp_path, program, edb
    ):
        cfg = _config(tmp_path, snapshot_every=1)
        s = IncrementalSession(program, edb, durable=cfg)

        class TrippingGuard:
            def checkpoint(self, stats):
                from repro.engine.governor import BudgetExceeded

                raise BudgetExceeded("deadline")

        class TrippingGovernor:
            def guard(self, unit=None, ordinal=None):
                return TrippingGuard()

        stats = EvalStats()
        before = list_snapshots(cfg)
        s._durable._batches_since_snapshot = 1
        assert s._durable.maybe_snapshot(s, stats, TrippingGovernor()) is False
        assert stats.degradations.get("snapshot->deferred") == 1
        assert list_snapshots(cfg) == before  # old snapshot untouched
        assert not list(tmp_path.glob("*.tmp"))  # temp cleaned up
        # the deferral retries on the next applied batch
        s.insert({"edge": [(3, 4)]})
        assert len(list_snapshots(cfg)) >= 1
        assert s.stats.snapshots_written >= 2
        s.close()


class TestSnapshots:
    def test_snapshot_survives_epoch_clear_and_prepared_cache(
        self, tmp_path, program, edb
    ):
        """The satellite: a snapshot written under one interning epoch
        loads bit-identically after the dictionary is cleared (epoch
        bump + id reassignment) and the prepared-program cache is
        dropped — snapshots decode through their embedded table, never
        the process dictionary."""
        cfg = _config(tmp_path, snapshot_every=0)
        s = IncrementalSession(program, edb, durable=cfg)
        s.insert({"edge": [("a", "b"), (3, "a")]})
        s.checkpoint()
        want_tc = s.facts("tc")
        want_edge = s.facts("edge")
        s.close()

        global_dictionary().clear()
        clear_prepared_cache()
        # grow the fresh dictionary so ids are *reassigned*, not just
        # absent — any decode through the live dictionary would skew
        for v in ("zz", 99, "yy", 7, "b", 3):
            global_dictionary().intern(v)

        snap = load_snapshot(list_snapshots(cfg)[0])
        assert snap.db.rows("tc") == want_tc
        assert snap.db.rows("edge") == want_edge

        r, report = recover(program, cfg)
        assert report.source == "replay"
        assert r.facts("tc") == want_tc
        # and the recovered session evaluates correctly under the new
        # epoch (columnar images rebuild lazily)
        r.insert({"edge": [("b", "c")]})
        assert ("a", "c") in r.facts("tc")
        r.close()

    def test_truncated_snapshot_detected(self, tmp_path, program, edb):
        cfg = _config(tmp_path, snapshot_every=0)
        s = IncrementalSession(program, edb, durable=cfg)
        path = list_snapshots(cfg)[0]
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 9)
        with pytest.raises(RecoveryError) as exc:
            load_snapshot(path)
        assert exc.value.reason == "snapshot-corrupt"
        # recovery refuses too: no other snapshot exists
        with pytest.raises(RecoveryError) as exc:
            recover(program, cfg)
        assert exc.value.reason == "no-valid-snapshot"
        s.close()

    def test_corrupt_newest_falls_back_to_older(self, tmp_path, program, edb):
        cfg = _config(tmp_path, snapshot_every=0, keep_snapshots=2)
        s = IncrementalSession(program, edb, durable=cfg)
        s.insert({"edge": [(3, 4)]})
        s.checkpoint()
        s.insert({"edge": [(4, 5)]})
        want = s.facts("tc")
        s.close()
        newest = list_snapshots(cfg)[0]
        with open(newest, "r+b") as f:
            f.truncate(os.path.getsize(newest) - 11)
        r, report = recover(program, cfg)
        assert report.snapshot_seq == 0  # anchored on the baseline
        assert report.skipped_snapshots
        assert r.facts("tc") == want
        r.close()


class TestRecoveryRungs:
    def test_flag_drift_refuse_then_scratch(self, tmp_path, program, edb):
        cfg = _config(tmp_path)
        s = IncrementalSession(program, edb, durable=cfg)
        s.insert({"edge": [(3, 4)]})
        want = s.facts("tc")
        s.close()
        drifted = EngineOptions(use_scc=False)
        with pytest.raises(RecoveryError) as exc:
            recover(program, cfg, drifted)
        assert exc.value.reason == "flag-drift"
        scratch_cfg = DurabilityConfig(
            wal_path=cfg.wal_path, on_flag_drift="scratch"
        )
        r, report = recover(program, scratch_cfg, drifted)
        assert report.source == "scratch"
        assert r.stats.degradations.get("recovery->scratch") == 1
        assert r.facts("tc") == want
        # re-anchored: a fresh recovery under the new flags replays
        r.close()
        r2, rep2 = recover(program, scratch_cfg, drifted)
        assert rep2.source == "replay"
        assert r2.facts("tc") == want
        r2.close()

    def test_program_drift_always_refused(self, tmp_path, program, edb):
        cfg = _config(tmp_path, on_flag_drift="scratch")
        s = IncrementalSession(program, edb, durable=cfg)
        s.close()
        other = parse("p(X) :- edge(X, Y).\n?- p(X).")
        with pytest.raises(RecoveryError) as exc:
            recover(other, cfg)
        assert exc.value.reason == "program-drift"

    def test_dirty_snapshot_takes_scratch_rung(self, tmp_path, program):
        """A governed-partial state is never replay-anchored: the
        baseline snapshot of a partial materialization is marked dirty
        and recovery re-evaluates from the exact base facts."""
        edb = Database.from_dict(
            {"edge": [(i, i + 1) for i in range(8)]}
        )
        cfg = _config(tmp_path, snapshot_every=0)
        opts = EngineOptions(max_facts=3, on_limit="partial")
        s = IncrementalSession(program, edb, opts, durable=cfg)
        assert s.is_partial
        s.close()
        r, report = recover(program, cfg, EngineOptions())
        assert report.source == "scratch"
        # scratch recovery restores full exactness, not the partial state
        want = evaluate(program, edb).db.rows("tc")
        assert r.facts("tc") == want
        r.close()

    def test_provenance_recovery_takes_scratch_rung(
        self, tmp_path, program, edb
    ):
        cfg = _config(tmp_path)
        opts = EngineOptions(record_provenance=True)
        s = IncrementalSession(program, edb, opts, durable=cfg)
        s.insert({"edge": [(3, 4)]})
        want = s.facts("tc")
        s.close()
        r, report = recover(program, cfg, opts)
        assert report.source == "scratch"
        assert r.facts("tc") == want
        # every derived fact has a valid justification again
        for pred_row, just in r.provenance.items():
            pred, row = pred_row
            assert row in r.facts(pred)
        for row in r.facts("tc") - r._protected("tc"):
            assert ("tc", row) in r.provenance
        r.close()

    def test_recovery_reports_timing(self, tmp_path, program, edb):
        cfg = _config(tmp_path)
        s = IncrementalSession(program, edb, durable=cfg)
        s.insert({"edge": [(3, 4)]})
        s.close()
        r, report = recover(program, cfg)
        assert report.recovery_ms > 0
        assert r.stats.recovery_ms == report.recovery_ms
        assert r.stats.wal_replays == report.replayed_batches == 1
        r.close()


class TestCrashInjection:
    def test_parse_wal_crash_specs(self):
        plan = parse_fault_specs(["wal-crash:torn-record:3"])
        assert plan.wal_crash == "torn-record"
        assert plan.wal_crash_seq == 3
        plan = parse_fault_specs(["wal-crash:mid-snapshot"])
        assert plan.wal_crash == "mid-snapshot"
        assert plan.wal_crash_seq is None
        from repro.datalog.errors import EvaluationError

        with pytest.raises(EvaluationError, match="wal-crash"):
            parse_fault_specs(["wal-crash:quietly"])

    def test_torn_record_damages_then_recovery_repairs(
        self, tmp_path, program, edb
    ):
        cfg = _config(tmp_path, snapshot_every=0)
        opts = EngineOptions(
            fault_plan=FaultPlan(wal_crash="torn-record", wal_crash_seq=2)
        )
        s = IncrementalSession(program, edb, opts, durable=cfg)
        s.insert({"edge": [(3, 4)]})
        with pytest.raises(WalCrash):
            s.insert({"edge": [(4, 5)]})
        data = read_wal(cfg.wal_path)
        assert data.torn_offset is not None  # real damage on disk
        assert [r["seq"] for r in data.records] == [1]
        r, report = recover(program, cfg)
        assert report.torn_tail_dropped
        assert (1, 4) in r.facts("tc")
        assert (1, 5) not in r.facts("tc")  # the torn batch never landed
        # appends resume on the repaired log at the right sequence
        r.insert({"edge": [(4, 6)]})
        assert [x["seq"] for x in read_wal(cfg.wal_path).records] == [1, 2]
        r.close(), s.close()

    def test_crash_points_leave_recoverable_state(self, tmp_path, program):
        for point in (
            "before-append",
            "after-append",
            "mid-snapshot",
            "truncated-snapshot",
        ):
            wal = tmp_path / f"{point}.wal"
            cfg = DurabilityConfig(wal_path=str(wal), snapshot_every=2)
            opts = EngineOptions(
                fault_plan=FaultPlan(wal_crash=point, wal_crash_seq=2)
            )
            edb = Database.from_dict({"edge": [(1, 2), (2, 3)]})
            s = IncrementalSession(program, edb, opts, durable=cfg)
            s.insert({"edge": [(3, 4)]})
            with pytest.raises(WalCrash):
                s.insert({"edge": [(4, 5)]})
            r, report = recover(program, cfg)
            include_crashed = point in (
                "after-append", "mid-snapshot", "truncated-snapshot"
            )
            assert ((1, 5) in r.facts("tc")) == include_crashed, point
            r.close()
            s.close()


class TestStatsPlumbing:
    def test_durability_counters_are_invariant_excluded(self):
        stats = EvalStats()
        stats.wal_appends = 3
        stats.wal_replays = 2
        stats.snapshots_written = 1
        stats.recovery_ms = 4.2
        full = stats.as_dict()
        assert full["wal_appends"] == 3
        inv = stats.as_dict(engine_invariant=True)
        for key in (
            "wal_appends", "wal_replays", "snapshots_written", "recovery_ms"
        ):
            assert key not in inv

    def test_summary_mentions_wal_activity(self):
        stats = EvalStats()
        stats.wal_appends = 3
        stats.snapshots_written = 1
        assert "wal=3" in stats.summary()
        assert "snaps=1" in stats.summary()


class TestBulkLoad:
    def test_bulk_load_fast_path(self):
        from repro.datalog.database import Relation

        rel = Relation(2)
        assert rel.bulk_load([(1, 2), (3, 4)]) == 2
        assert (1, 2) in rel and len(rel) == 2
        # indexes build lazily afterwards, as usual
        assert rel.lookup((0,), (3,)) == [(3, 4)]

    def test_bulk_load_refuses_nonempty(self):
        from repro.datalog.database import Relation
        from repro.datalog.errors import ArityError, ValidationError

        rel = Relation(2)
        rel.add((1, 2))
        with pytest.raises(ValidationError):
            rel.bulk_load([(3, 4)])
        fresh = Relation(2)
        with pytest.raises(ArityError):
            fresh.bulk_load([(1, 2, 3)])
