"""Tests for stratified-negation evaluation semantics."""

import pytest

from repro.datalog import Database, ValidationError, parse
from repro.engine import EngineOptions, evaluate
from repro.workloads.graphs import chain, random_digraph


REACH = parse(
    """
    reach(X) :- start(X).
    reach(Y) :- reach(X), edge(X, Y).
    unreachable(X) :- node(X), not reach(X).
    ?- unreachable(X).
    """
)


def reach_db(edges, start, nodes):
    return Database.from_dict(
        {"start": [(start,)], "edge": edges, "node": [(n,) for n in nodes]}
    )


class TestStratifiedSemantics:
    def test_unreachable_complement(self):
        db = reach_db([(0, 1), (1, 2), (5, 6)], 0, range(7))
        result = evaluate(REACH, db)
        assert result.answers() == {(3,), (4,), (5,), (6,)}

    def test_matches_set_complement_reference(self):
        edges = random_digraph(15, 25, seed=4)
        db = reach_db(edges, 0, range(15))
        result = evaluate(REACH, db)
        # independent reference
        reach = {0}
        changed = True
        while changed:
            changed = False
            for a, b in edges:
                if a in reach and b not in reach:
                    reach.add(b)
                    changed = True
        assert result.answers() == {(n,) for n in range(15) if n not in reach}

    def test_naive_strategy_agrees(self):
        db = reach_db(chain(8), 2, range(8))
        semi = evaluate(REACH, db).answers()
        naive = evaluate(REACH, db, EngineOptions(strategy="naive")).answers()
        assert semi == naive

    def test_three_strata(self):
        program = parse(
            """
            a(X) :- flag(X).
            b(X) :- base(X), not a(X).
            c(X) :- base(X), not b(X).
            ?- c(X).
            """
        )
        db = Database.from_dict({"flag": [(1,)], "base": [(1,), (2,)]})
        # a = {1}; b = base - a = {2}; c = base - b = {1}
        assert evaluate(program, db).answers() == {(1,)}

    def test_negation_of_edb(self):
        program = parse(
            """
            missing(X) :- candidates(X), not present(X).
            ?- missing(X).
            """
        )
        db = Database.from_dict(
            {"candidates": [(1,), (2,), (3,)], "present": [(2,)]}
        )
        assert evaluate(program, db).answers() == {(1,), (3,)}

    def test_negation_of_absent_relation(self):
        program = parse(
            """
            all(X) :- candidates(X), not ghost(X).
            ?- all(X).
            """
        )
        db = Database.from_dict({"candidates": [(1,)]})
        assert evaluate(program, db).answers() == {(1,)}

    def test_non_stratified_rejected(self):
        program = parse(
            """
            win(X) :- move(X, Y), not win(Y).
            ?- win(X).
            """
        )
        with pytest.raises(ValidationError):
            evaluate(program, Database.from_dict({"move": [(1, 2)]}))

    def test_ground_negation(self):
        program = parse(
            """
            go(X) :- item(X), not blocked(1).
            ?- go(X).
            """
        )
        db1 = Database.from_dict({"item": [(5,)], "blocked": [(1,)]})
        db2 = Database.from_dict({"item": [(5,)], "blocked": [(2,)]})
        assert evaluate(program, db1).answers() == frozenset()
        assert evaluate(program, db2).answers() == {(5,)}

    def test_negation_within_recursive_stratum_over_lower(self):
        # positive recursion in the top stratum, negating a lower one
        program = parse(
            """
            bad(X) :- flag(X).
            good(X) :- source(X), not bad(X).
            good(Y) :- good(X), edge(X, Y), not bad(Y).
            ?- good(X).
            """
        )
        db = Database.from_dict(
            {
                "flag": [(2,)],
                "source": [(0,)],
                "edge": [(0, 1), (1, 2), (2, 3), (1, 4)],
            }
        )
        # reach from 0 avoiding 2: {0, 1, 4} (3 is behind 2)
        assert evaluate(program, db).answers() == {(0,), (1,), (4,)}

    def test_provenance_through_negation(self):
        db = reach_db([(0, 1)], 0, range(3))
        result = evaluate(REACH, db, EngineOptions(record_provenance=True))
        tree = result.derivation("unreachable", (2,))
        # the justification records the positive body only
        assert [c.predicate for c in tree.children] == ["node"]

    def test_stats_count_negative_probes(self):
        db = reach_db(chain(5), 0, range(5))
        result = evaluate(REACH, db)
        assert result.stats.join_probes > 0
