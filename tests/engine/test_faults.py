"""Fault injection and the graceful-degradation ladder.

Every recoverable fault must step the engine down exactly one rung —
columnar→tuple-kernel, kernel→interpreter, index→scan, SCC→monolithic,
parallel→sequential — and still produce the exact fixpoint.  A genuine worker exception
(``unit-error``) must surface verbatim: no deadlock, no swallowed
future, no wrapping that loses the original message.
"""

import pytest

from repro.datalog import Database, parse
from repro.datalog.errors import EvaluationError
from repro.engine import (
    EngineOptions,
    FaultPlan,
    InjectedUnitError,
    evaluate,
    parse_fault_specs,
)

PROGRAM = """
    tc1(X, Y) :- e1(X, Y).
    tc1(X, Y) :- e1(X, Z), tc1(Z, Y).
    tc2(X, Y) :- e2(X, Y).
    tc2(X, Y) :- e2(X, Z), tc2(Z, Y).
    both(X, Y) :- tc1(X, Y), tc2(X, Y).
    ?- both(X, Y).
"""


def chain(n):
    return [(i, i + 1) for i in range(n)]


def edb():
    return Database.from_dict({"e1": chain(10), "e2": chain(10)})


@pytest.fixture(scope="module")
def expected():
    return evaluate(parse(PROGRAM), edb()).answers()


class TestDegradationLadder:
    def test_columnar_fault_falls_back_to_tuple_kernels(self, expected):
        plan = FaultPlan(columnar=True)
        faulted = evaluate(
            parse(PROGRAM), edb(), EngineOptions(fault_plan=plan)
        )
        clean = evaluate(parse(PROGRAM), edb())
        assert faulted.answers() == expected
        # every rule ran, but on the tuple kernels: no batch work, and
        # each routed firing counted as a columnar fallback
        assert faulted.stats.batch_probes == 0
        assert faulted.stats.batch_rows == 0
        assert faulted.stats.columnar_fallbacks > 0
        assert faulted.stats.kernel_launches > 0
        assert faulted.stats.degradations == {"columnar->tuple": 1}
        assert faulted.stats.faults_injected == 1
        assert not faulted.is_partial
        # the rung below is intact: engine-invariant work is identical
        # (modulo the fault bookkeeping the injection itself performs)
        injection_keys = {"faults_injected", "governor_checks"}
        faulted_work = faulted.stats.as_dict(engine_invariant=True)
        clean_work = clean.stats.as_dict(engine_invariant=True)
        for key in injection_keys:
            faulted_work.pop(key), clean_work.pop(key)
        assert faulted_work == clean_work

    def test_columnar_fault_is_a_noop_without_the_columnar_plane(self, expected):
        plan = FaultPlan(columnar=True)
        result = evaluate(
            parse(PROGRAM),
            edb(),
            EngineOptions(use_columnar=False, fault_plan=plan),
        )
        assert result.answers() == expected
        assert result.stats.degradations == {}
        assert result.stats.columnar_fallbacks == 0

    def test_kernel_fault_falls_back_to_interpreter(self, expected):
        plan = FaultPlan(kernel_compile=frozenset(["*"]))
        result = evaluate(
            parse(PROGRAM), edb(), EngineOptions(fault_plan=plan)
        )
        assert result.answers() == expected
        assert result.stats.kernel_launches == 0
        assert result.stats.degradations.get("kernel->interpreter", 0) > 0
        assert result.stats.faults_injected > 0
        assert not result.is_partial

    def test_kernel_fault_single_predicate(self, expected):
        plan = FaultPlan(kernel_compile=frozenset(["tc1"]))
        faulted = evaluate(
            parse(PROGRAM), edb(), EngineOptions(fault_plan=plan)
        )
        clean = evaluate(parse(PROGRAM), edb())
        assert faulted.answers() == expected
        # only tc1's rules lost their kernels; the rest still launch
        assert 0 < faulted.stats.kernel_launches < clean.stats.kernel_launches
        assert faulted.stats.degradations == {"kernel->interpreter": 1}

    def test_index_fault_falls_back_to_scans(self, expected):
        plan = FaultPlan(index_build=True)
        result = evaluate(
            parse(PROGRAM), edb(), EngineOptions(fault_plan=plan)
        )
        assert result.answers() == expected
        assert result.stats.index_probes == 0
        assert result.stats.scan_fallbacks > 0
        assert result.stats.degradations == {"index->scan": 1}

    def test_scheduler_fault_falls_back_to_monolithic(self, expected):
        plan = FaultPlan(scheduler=True)
        result = evaluate(
            parse(PROGRAM), edb(), EngineOptions(fault_plan=plan)
        )
        assert result.answers() == expected
        assert result.stats.units_scheduled == 0
        assert result.stats.degradations == {"scc->monolithic": 1}

    def test_worker_death_retries_sequentially(self, expected):
        plan = FaultPlan(worker_death=0)
        result = evaluate(
            parse(PROGRAM), edb(),
            EngineOptions(parallel=4, fault_plan=plan),
        )
        assert result.answers() == expected
        assert result.stats.degradations == {"parallel->sequential": 1}
        assert result.stats.faults_injected == 1

    def test_worker_death_without_parallelism(self, expected):
        """The ladder also covers sequential scheduling: the unit is
        simply retried inline."""
        plan = FaultPlan(worker_death=1)
        result = evaluate(
            parse(PROGRAM), edb(), EngineOptions(fault_plan=plan)
        )
        assert result.answers() == expected
        assert result.stats.degradations == {"parallel->sequential": 1}

    def test_stacked_faults_descend_multiple_rungs(self, expected):
        plan = FaultPlan(
            kernel_compile=frozenset(["*"]),
            index_build=True,
            worker_death=0,
        )
        result = evaluate(
            parse(PROGRAM), edb(),
            EngineOptions(parallel=2, fault_plan=plan),
        )
        assert result.answers() == expected
        assert result.stats.kernel_launches == 0
        assert result.stats.index_probes == 0
        assert set(result.stats.degradations) == {
            "kernel->interpreter",
            "index->scan",
            "parallel->sequential",
        }

    def test_columnar_and_kernel_faults_stack_to_interpreter(self, expected):
        """Both codegen rungs at once: the run lands on the plan
        interpreter and still reaches the exact fixpoint."""
        plan = FaultPlan(columnar=True, kernel_compile=frozenset(["*"]))
        result = evaluate(
            parse(PROGRAM), edb(), EngineOptions(fault_plan=plan)
        )
        assert result.answers() == expected
        assert result.stats.batch_probes == 0
        assert result.stats.kernel_launches == 0
        # kernel-compile fires first at every rule, so the columnar
        # rung is never separately consulted
        assert set(result.stats.degradations) == {"kernel->interpreter"}

    def test_slow_unit_changes_nothing_but_time(self, expected):
        plan = FaultPlan(slow_unit=0, slow_s=0.01)
        result = evaluate(
            parse(PROGRAM), edb(), EngineOptions(fault_plan=plan)
        )
        assert result.answers() == expected
        assert result.stats.degradations == {}

    def test_summary_mentions_degradations(self):
        plan = FaultPlan(kernel_compile=frozenset(["*"]))
        result = evaluate(
            parse(PROGRAM), edb(), EngineOptions(fault_plan=plan)
        )
        text = result.stats.summary()
        assert "faults=" in text
        assert "kernel->interpreter" in text


class TestWorkerFailureSurfaces:
    """Satellite: a worker thread raising mid-unit must surface the
    original exception — not deadlock, not vanish into a dropped
    future — and the per-unit stats gathered before the failure must
    still merge."""

    def test_unit_error_surfaces_verbatim(self):
        plan = FaultPlan(unit_error=0)
        with pytest.raises(InjectedUnitError) as exc:
            evaluate(
                parse(PROGRAM), edb(),
                EngineOptions(parallel=4, fault_plan=plan),
            )
        # the original message, not a wrapper's
        assert "injected unit error" in str(exc.value)
        # deliberately NOT part of the ReproError hierarchy: genuine
        # defects must not be mistaken for governed outcomes
        assert not isinstance(exc.value, EvaluationError)

    @pytest.mark.parametrize("ordinal", [0, 1, 2])
    def test_unit_error_any_unit(self, ordinal):
        plan = FaultPlan(unit_error=ordinal)
        with pytest.raises(InjectedUnitError):
            evaluate(
                parse(PROGRAM), edb(),
                EngineOptions(parallel=4, fault_plan=plan),
            )

    def test_unit_error_sequential_scheduling(self):
        plan = FaultPlan(unit_error=0)
        with pytest.raises(InjectedUnitError):
            evaluate(parse(PROGRAM), edb(), EngineOptions(fault_plan=plan))

    def test_no_deadlock_or_swallow_20x(self):
        """20 repetitions: the failing future must be collected every
        time regardless of thread interleaving."""
        program = parse(PROGRAM)
        plan = FaultPlan(unit_error=1)
        for _ in range(20):
            with pytest.raises(InjectedUnitError):
                evaluate(
                    program, edb(),
                    EngineOptions(parallel=4, fault_plan=plan),
                )

    def test_sibling_unit_stats_still_merge(self):
        """Work done by units that completed before the failure is not
        lost: the barrier merges every unit's partial statistics before
        re-raising, so the shared stats object already holds the
        sibling's counters when the exception surfaces."""
        from repro.datalog.analysis import analyze
        from repro.engine.faults import FaultInjector
        from repro.engine.governor import Governor
        from repro.engine.plan import compile_rule
        from repro.engine.scheduler import run_scheduled
        from repro.engine.statistics import EvalStats

        program = parse(PROGRAM)
        # fail the second unit of the depth-0 batch (tc2); its sibling
        # tc1 completes and must be merged before the error is raised
        plan = FaultPlan(unit_error=1)
        opts = EngineOptions(parallel=4, fault_plan=plan)
        governor = Governor(opts, FaultInjector(plan))
        info = analyze(program)
        strata = [
            [compile_rule(r, i) for i, r in enumerate(program.rules)]
        ]
        db = edb().copy(mutating=program.idb_predicates())
        arities = program.arities()
        for pred in program.idb_predicates():
            db.ensure(pred, arities[pred])
        stats = EvalStats()
        with pytest.raises(InjectedUnitError):
            run_scheduled(strata, info, db, stats, {}, opts, governor)
        assert stats.units_scheduled >= 1  # sibling merged before raise
        assert "tc1" in stats.unit_rounds  # ...including its rounds
        assert stats.facts_derived > 0
        assert len(db.rows("tc1")) == 55  # tc1's fixpoint completed


class TestFaultSpecParsing:
    def test_round_trip_all_specs(self):
        plan = parse_fault_specs(
            [
                "columnar",
                "kernel-compile:tc1",
                "index-build",
                "scheduler",
                "worker-death:2",
                "unit-error:3",
                "slow-unit:1:0.25",
            ]
        )
        assert plan.kernel_compile == frozenset(["tc1"])
        assert plan.columnar
        assert plan.index_build and plan.scheduler
        assert plan.worker_death == 2
        assert plan.unit_error == 3
        assert plan.slow_unit == 1 and plan.slow_s == 0.25

    def test_kernel_compile_wildcard(self):
        assert parse_fault_specs(["kernel-compile"]).kernel_compile == frozenset(
            ["*"]
        )

    def test_empty_specs_mean_no_faults(self):
        assert not parse_fault_specs([]).any()

    @pytest.mark.parametrize(
        "spec", ["bogus", "worker-death", "worker-death:x", "slow-unit:0:x"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(EvaluationError):
            parse_fault_specs([spec])
