"""Hash indexes: lazy construction, incremental maintenance, planner
key selection, and the scan-fallback path of the evaluator."""

import pytest

from repro.datalog import Database, parse
from repro.datalog.database import Relation
from repro.engine import EngineOptions, evaluate
from repro.engine.plan import compile_rule, order_body


# -- Relation-level index behaviour -----------------------------------------


def test_index_built_lazily_and_counted():
    rel = Relation(2, [(1, 2), (1, 3), (2, 3)])
    assert rel.index_builds == 0
    assert not rel.has_index((0,))
    index = rel.index_for((0,))
    assert rel.index_builds == 1
    assert rel.has_index((0,))
    assert sorted(index[(1,)]) == [(1, 2), (1, 3)]
    # a second request reuses the cached index
    assert rel.index_for((0,)) is index
    assert rel.index_builds == 1


def test_indexes_maintained_on_insert():
    rel = Relation(2, [(1, 2)])
    rel.index_for((0,))
    rel.index_for((1,))
    rel.add((1, 5))
    assert sorted(rel.lookup((0,), (1,))) == [(1, 2), (1, 5)]
    assert rel.lookup((1,), (5,)) == [(1, 5)]
    # no rebuild happened: both lookups were served incrementally
    assert rel.index_builds == 2


def test_duplicate_insert_does_not_corrupt_index():
    rel = Relation(2, [(1, 2)])
    rel.index_for((0,))
    assert rel.add((1, 2)) is False
    assert rel.lookup((0,), (1,)) == [(1, 2)]


def test_invalidate_indexes_then_rebuild():
    rel = Relation(2, [(1, 2), (2, 3)])
    rel.index_for((0,))
    assert rel.indexed_position_sets() == frozenset({(0,)})
    rel.invalidate_indexes()
    assert rel.indexed_position_sets() == frozenset()
    assert not rel.has_index((0,))
    # lookups still work (lazy rebuild) and the build is counted
    assert rel.lookup((0,), (2,)) == [(2, 3)]
    assert rel.index_builds == 2


def test_lookup_on_multi_position_key():
    rel = Relation(3, [(1, 2, 3), (1, 2, 4), (1, 9, 3)])
    assert sorted(rel.lookup((0, 1), (1, 2))) == [(1, 2, 3), (1, 2, 4)]
    assert rel.lookup((0, 1), (1, 7)) == []


def test_empty_positions_lookup_returns_all_rows():
    rel = Relation(2, [(1, 2), (2, 3)])
    assert sorted(rel.lookup((), ())) == [(1, 2), (2, 3)]
    assert rel.index_builds == 0  # full enumeration needs no index


# -- planner key selection ---------------------------------------------------


def test_planner_selects_bound_positions_as_index_key():
    program = parse(
        """
        out(X, Z) :- e(X, Y), f(Y, Z).
        ?- out(X, Z).
        """
    )
    cr = compile_rule(program.rules[0], 0)
    first, second = cr.plan
    assert first.bound_positions == ()  # nothing bound yet: scan
    assert second.bound_positions == (0,)  # Y is bound by the first literal
    assert second.atom.predicate in {"e", "f"}


def test_planner_prefers_smaller_relation_on_ties():
    program = parse(
        """
        out(X) :- big(X), small(X).
        ?- out(X).
        """
    )
    sizes = {"big": 1000, "small": 3}
    plan = order_body(tuple(program.rules[0].body), sizes=sizes)
    assert plan[0].atom.predicate == "small"
    assert plan[1].atom.predicate == "big"
    assert plan[1].bound_positions == (0,)


def test_constants_count_as_bound_positions():
    program = parse(
        """
        out(Y) :- e(1, Y).
        ?- out(Y).
        """
    )
    cr = compile_rule(program.rules[0], 0)
    assert cr.plan[0].bound_positions == (0,)
    assert cr.plan[0].key_for({}) == (1,)


# -- evaluator counters: index probes vs scan fallbacks ----------------------

TC = """
a(X, Y) :- p(X, Y).
a(X, Y) :- p(X, Z), a(Z, Y).
?- a(X, Y).
"""

DB = {"p": [(1, 2), (2, 3), (3, 4), (4, 1), (2, 4)]}


def test_indexed_run_counts_probes_and_builds():
    program = parse(TC)
    res = evaluate(program, Database.from_dict(DB))
    assert res.stats.index_probes > 0
    assert res.stats.index_builds > 0
    # fallbacks only for the unbound first literals, which are scans by
    # nature, never because an index was refused
    assert res.stats.scan_fallbacks > 0
    assert res.stats.join_work == res.stats.rows_scanned + res.stats.index_probes


def test_no_index_run_takes_scan_fallback_path():
    program = parse(TC)
    db = Database.from_dict(DB)
    indexed = evaluate(program, db)
    scan = evaluate(program, db, EngineOptions(use_indexes=False))
    assert scan.stats.index_probes == 0
    assert scan.stats.index_builds == 0
    assert scan.stats.scan_fallbacks >= indexed.stats.scan_fallbacks
    assert scan.stats.rows_scanned > indexed.stats.rows_scanned
    assert scan.answers() == indexed.answers()


def test_scan_fallback_charges_full_relation():
    # one bound probe into p under use_indexes=False must enumerate all
    # of p: delivered + rejected rows == len(p)
    program = parse(
        """
        out(Y) :- q(X), p(X, Y).
        ?- out(Y).
        """
    )
    db = Database.from_dict({"p": [(1, 2), (1, 3), (2, 9)], "q": [(1,)]})
    scan = evaluate(program, db, EngineOptions(use_indexes=False))
    # q scan: 1 row; p probe: all 3 rows enumerated
    assert scan.stats.rows_scanned == 1 + 3
    assert scan.stats.scan_fallbacks == 2


def test_second_evaluate_reuses_base_relation_indexes():
    """Regression: evaluate() used to deep-copy the EDB and rebuild
    every index from scratch on each call.  Base relations are now
    shared with the working database, so indexes built during one run
    stay materialized for the next."""
    program = parse(TC)
    db = Database.from_dict(DB)
    first = evaluate(program, db)
    assert first.stats.index_builds > 0  # cold start builds them
    built = db.index_builds()
    assert built > 0  # ... and they persisted onto the input database
    second = evaluate(program, db)
    assert db.index_builds() == built  # no EDB index was rebuilt
    assert second.stats.index_builds < first.stats.index_builds
    assert second.answers() == first.answers()


def test_relation_copy_carries_indexes():
    rel = Relation(2, [(1, 2), (1, 3), (2, 3)])
    rel.index_for((0,))
    clone = rel.copy()
    assert clone.has_index((0,))
    assert sorted(clone.lookup((0,), (1,))) == [(1, 2), (1, 3)]
    assert clone.index_builds == 0  # carried, not rebuilt
    # the carried index is independent of the original
    clone.add((1, 9))
    assert sorted(clone.lookup((0,), (1,))) == [(1, 2), (1, 3), (1, 9)]
    assert sorted(rel.lookup((0,), (1,))) == [(1, 2), (1, 3)]


def test_shared_copy_shares_exactly_the_unnamed_relations():
    db = Database.from_dict({"p": [(1, 2)], "q": [(3,)]})
    shared = db.copy(mutating={"q"})
    assert shared.relation("p") is db.relation("p")
    assert shared.relation("q") is not db.relation("q")
    shared.add("q", 4)
    assert db.rows("q") == {(3,)}


def test_probe_ratio_property():
    program = parse(TC)
    res = evaluate(program, Database.from_dict(DB))
    total = res.stats.index_probes + res.stats.scan_fallbacks
    assert res.stats.probe_ratio == pytest.approx(res.stats.index_probes / total)
    scan = evaluate(program, Database.from_dict(DB), EngineOptions(use_indexes=False))
    assert scan.stats.probe_ratio == 0.0
