"""Property tests for :class:`~repro.engine.incremental.IncrementalSession`.

The differential oracle (tests/oracle/test_incremental.py) checks the
big equivalence — incremental state == from-scratch state.  This module
pins the *session-level* contracts that equivalence alone does not
force: algebraic no-op laws (insert-then-retract, idempotent batches,
batch order-insensitivity), the maintenance counters and their
invariants (``units_reactivated <= units_scheduled``, unaffected units
skipped), copy-on-write isolation between sessions sharing one EDB,
bit-determinism of parallel-mode sessions under updates, and the
prepared-program cache (hits skip planning without changing a single
counter).
"""

from dataclasses import replace

import pytest

from repro.datalog import Database, parse
from repro.datalog.errors import ArityError
from repro.engine import (
    EngineOptions,
    IncrementalSession,
    clear_prepared_cache,
    evaluate,
    prepared_cache_stats,
)

TC = """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
"""

SIBLINGS = """
    tc1(X, Y) :- e1(X, Y).
    tc1(X, Y) :- e1(X, Z), tc1(Z, Y).
    tc2(X, Y) :- e2(X, Y).
    tc2(X, Y) :- e2(X, Z), tc2(Z, Y).
    q(X) :- tc1(X, Y), tc2(X, Y).
    ?- q(X).
"""


def chain(n):
    return [(i, i + 1) for i in range(n)]


def snapshot(session, preds):
    state = {p: session.facts(p) for p in preds}
    state["__answers__"] = session.answers()
    return state


@pytest.fixture
def tc_session():
    return IncrementalSession(
        parse(TC), Database.from_dict({"edge": chain(6)})
    )


class TestNoOpLaws:
    def test_insert_then_retract_same_batch_is_noop(self, tc_session):
        before = snapshot(tc_session, ["edge", "tc"])
        batch = {"edge": [(10, 11), (11, 12), (2, 10)]}
        tc_session.insert(batch)
        tc_session.retract(batch)
        assert snapshot(tc_session, ["edge", "tc"]) == before

    def test_insert_of_present_rows_is_noop(self, tc_session):
        before = snapshot(tc_session, ["edge", "tc"])
        stats = tc_session.insert({"edge": [(0, 1), (1, 2)]})
        assert snapshot(tc_session, ["edge", "tc"]) == before
        assert stats.units_reactivated == 0  # nothing changed, no work

    def test_retract_of_absent_rows_is_noop(self, tc_session):
        before = snapshot(tc_session, ["edge", "tc"])
        stats = tc_session.retract({"edge": [(40, 41)], "tc": [(40, 41)]})
        assert snapshot(tc_session, ["edge", "tc"]) == before
        assert stats.facts_retracted == 0

    def test_batch_is_order_insensitive(self):
        """One batch applied in any element order lands in one state —
        updates are set-at-a-time, not row-at-a-time."""
        rows = [("edge", (7, 8)), ("edge", (3, 7)), ("edge", (8, 0))]
        states = []
        for batch in (rows, list(reversed(rows))):
            s = IncrementalSession(
                parse(TC), Database.from_dict({"edge": chain(6)})
            )
            s.insert(batch)
            s.retract([("edge", (1, 2)), ("edge", (8, 0))])
            states.append(snapshot(s, ["edge", "tc"]))
        assert states[0] == states[1]

    def test_refresh_without_partial_is_noop(self, tc_session):
        before = snapshot(tc_session, ["edge", "tc"])
        tc_session.refresh()
        assert not tc_session.is_partial
        assert snapshot(tc_session, ["edge", "tc"]) == before

    def test_arity_mismatch_rejected(self, tc_session):
        with pytest.raises(ArityError):
            tc_session.insert({"edge": [(1, 2, 3)]})
        with pytest.raises(ArityError):
            tc_session.retract({"tc": [(1,)]})


class TestMaintenanceCounters:
    def test_reactivated_never_exceeds_scheduled(self):
        session = IncrementalSession(
            parse(SIBLINGS),
            Database.from_dict({"e1": chain(5), "e2": chain(5)}),
        )
        for batch in (
            {"e1": [(5, 6)]},
            {"e2": [(9, 10)]},
            {"e1": [(0, 1)], "e2": [(1, 2)]},
        ):
            stats = session.insert(batch)
            assert stats.units_reactivated <= stats.units_scheduled
            stats = session.retract(batch)
            assert stats.units_reactivated <= stats.units_scheduled
        cumulative = session.stats
        assert cumulative.units_reactivated <= cumulative.units_scheduled
        assert cumulative.incremental_updates == 6

    def test_unaffected_units_are_skipped(self):
        """An insert touching only e1 must not re-run the tc2 unit:
        three units exist (tc1, tc2, q), only tc1 and q react."""
        session = IncrementalSession(
            parse(SIBLINGS),
            Database.from_dict({"e1": chain(5), "e2": chain(5)}),
        )
        stats = session.insert({"e1": [(5, 6)]})
        assert stats.units_scheduled == 3
        assert stats.units_reactivated == 2
        assert "tc2" not in stats.unit_rounds

    def test_rederivation_is_counted(self):
        """Deleting edge(1,2) overdeletes tc(0,2) (derived through it)
        but the shortcut edge(0,2) still supports it — DRed must bring
        it back and say so."""
        session = IncrementalSession(
            parse(TC),
            Database.from_dict({"edge": [(0, 1), (1, 2), (0, 2)]}),
        )
        stats = session.retract({"edge": [(1, 2)]})
        assert (0, 2) in session.facts("tc")
        assert stats.facts_rederived >= 1
        assert stats.facts_retracted >= 2  # edge(1,2) and tc(1,2) at least
        scratch = evaluate(
            parse(TC), Database.from_dict({"edge": [(0, 1), (0, 2)]})
        )
        assert session.facts("tc") == scratch.facts("tc")

    def test_tail_deletion_worst_case_stays_exact(self):
        """DRed's worst case: deleting the *tail* edge of a right-linear
        chain kills tc(*, n) one overdeletion round per hop — O(n)
        rounds, no rederivation possible.  The batch may degrade toward
        from-scratch cost but never past soundness."""
        n = 12
        session = IncrementalSession(
            parse(TC), Database.from_dict({"edge": chain(n)})
        )
        stats = session.retract({"edge": [(n - 1, n)]})
        # the whole last column dies: edge(n-1,n) plus tc(i,n) for all i
        assert stats.facts_retracted == n + 1
        assert stats.facts_rederived == 0
        scratch = evaluate(
            parse(TC), Database.from_dict({"edge": chain(n - 1)})
        )
        assert session.facts("tc") == scratch.facts("tc")


class TestSharedEdbIsolation:
    """The copy-on-write regression: sessions sharing one EDB must stay
    independent, and the caller's database must never mutate."""

    def test_two_sessions_on_one_edb_stay_independent(self):
        edb = Database.from_dict({"edge": chain(6)})
        baseline_edge = edb.rows("edge")
        s1 = IncrementalSession(parse(TC), edb)
        s2 = IncrementalSession(parse(TC), edb)
        s1.insert({"edge": [(6, 7)]})
        assert s2.facts("edge") == baseline_edge
        assert (6, 7) not in s2.facts("tc").union(s2.facts("edge"))
        s2.retract({"edge": [(0, 1)]})
        assert (0, 1) in s1.facts("edge")  # s2's retraction is private
        assert (0, 6) in s1.facts("tc")
        assert (0, 1) not in s2.facts("edge")
        assert edb.rows("edge") == baseline_edge  # caller's EDB untouched
        # each session still equals its own from-scratch reference
        ref1 = evaluate(parse(TC), Database.from_dict({"edge": chain(7)}))
        assert s1.facts("tc") == ref1.facts("tc")
        ref2 = evaluate(parse(TC), Database.from_dict({"edge": chain(6)[1:]}))
        assert s2.facts("tc") == ref2.facts("tc")

    def test_retraction_before_any_insert_privatizes(self):
        """The dangerous direction: the first write being a *discard*
        must copy the shared relation, not mutate it in place."""
        edb = Database.from_dict({"edge": chain(4)})
        session = IncrementalSession(parse(TC), edb)
        session.retract({"edge": [(1, 2)]})
        assert (1, 2) in edb.rows("edge")
        assert (1, 2) not in session.facts("edge")


class TestParallelDeterminism:
    def test_parallel_sessions_bit_deterministic_under_updates(self):
        """20 identical parallel-mode sessions through one update
        script: identical facts and identical counters, bit for bit."""
        program_text = SIBLINGS

        def run():
            session = IncrementalSession(
                parse(program_text),
                Database.from_dict({"e1": chain(6), "e2": chain(6)}),
                EngineOptions(parallel=4),
            )
            session.insert({"e1": [(6, 7)], "e2": [(6, 7)]})
            session.retract({"e1": [(2, 3)]})
            session.insert({"e2": [(9, 2)]})
            session.retract({"e2": [(0, 1)], "e1": [(6, 7)]})
            return (
                snapshot(session, ["e1", "e2", "tc1", "tc2", "q"]),
                session.stats.as_dict(),
            )

        first_state, first_stats = run()
        for _ in range(19):
            state, stats = run()
            assert state == first_state
            assert stats == first_stats


class TestPreparedCache:
    def test_repeat_sessions_hit_the_cache(self):
        clear_prepared_cache()
        db = {"edge": chain(6)}
        s1 = IncrementalSession(parse(TC), Database.from_dict(db))
        after_first = prepared_cache_stats()
        assert after_first["misses"] == 1
        s2 = IncrementalSession(parse(TC), Database.from_dict(db))
        after_second = prepared_cache_stats()
        assert after_second["hits"] == after_first["hits"] + 1
        assert after_second["misses"] == after_first["misses"]
        assert after_second["entries"] == 1
        # sharing the prepared program shares the compiled rules
        assert s2.prepared is s1.prepared

    def test_cache_hit_changes_no_counter(self):
        """A hit skips planning work only: the evaluation itself is
        bit-identical to the cold-cache run."""
        clear_prepared_cache()
        db = {"edge": chain(6)}
        cold = IncrementalSession(parse(TC), Database.from_dict(db))
        warm = IncrementalSession(parse(TC), Database.from_dict(db))
        assert warm.answers() == cold.answers()
        assert warm.stats.as_dict() == cold.stats.as_dict()

    def test_size_profile_is_part_of_the_key(self):
        """Plans depend on the relation-size profile, so a different
        EDB shape must miss rather than reuse stale join orders."""
        clear_prepared_cache()
        IncrementalSession(parse(TC), Database.from_dict({"edge": chain(6)}))
        IncrementalSession(parse(TC), Database.from_dict({"edge": chain(30)}))
        stats = prepared_cache_stats()
        assert stats["misses"] == 2
        assert stats["entries"] == 2

    def test_same_size_bucket_hits(self):
        """The key carries log-bucketed sizes, not exact counts: two
        EDBs in the same power-of-two bucket provably get identical
        plans, so a few inserted rows must not evict the preparation."""
        clear_prepared_cache()
        IncrementalSession(parse(TC), Database.from_dict({"edge": chain(100)}))
        IncrementalSession(parse(TC), Database.from_dict({"edge": chain(101)}))
        stats = prepared_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] >= 1
        assert stats["entries"] == 1

    def test_bucket_boundary_misses(self):
        """Crossing a bucket boundary changes the planning inputs, so
        the cache must miss rather than reuse a stale order."""
        clear_prepared_cache()
        IncrementalSession(parse(TC), Database.from_dict({"edge": chain(127)}))
        IncrementalSession(parse(TC), Database.from_dict({"edge": chain(128)}))
        stats = prepared_cache_stats()
        assert stats["misses"] == 2
        assert stats["entries"] == 2

    def test_per_batch_options_can_be_swapped(self, tc_session):
        """session.options governs *subsequent* batches — swapping in a
        tighter budget mid-session applies per batch (used heavily by
        the governor tests)."""
        tc_session.options = replace(tc_session.options, max_facts=10**9)
        stats = tc_session.insert({"edge": [(6, 7)]})
        assert stats.governor_checks > 0
        assert not tc_session.is_partial
