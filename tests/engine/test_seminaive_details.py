"""Detailed semi-naive behaviour: delta discipline, iteration counts,
and work-counter invariants on structured inputs."""

import pytest

from repro.datalog import Database, parse
from repro.engine import EngineOptions, evaluate
from repro.workloads.graphs import chain, complete, cycle


TC = parse(
    """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
    """
)


class TestIterationCounts:
    def test_empty_input_one_iteration(self):
        stats = evaluate(TC, Database()).stats
        assert stats.iterations == 1

    def test_non_recursive_constant_iterations(self):
        program = parse("q(X) :- e(X, Y). ?- q(X).")
        for n in (2, 20, 200):
            db = Database.from_dict({"e": chain(n)})
            stats = evaluate(program, db).stats
            assert stats.iterations <= 3

    def test_iterations_bounded_by_longest_path(self):
        # semi-naive with immediate insertion converges in at most
        # O(longest path) rounds; typically far fewer
        db = Database.from_dict({"edge": chain(40)})
        stats = evaluate(TC, db).stats
        assert stats.iterations <= 41

    def test_seminaive_no_fewer_facts_than_naive(self):
        db = Database.from_dict({"edge": cycle(8)})
        semi = evaluate(TC, db).stats
        naive = evaluate(TC, db, EngineOptions(strategy="naive")).stats
        assert semi.facts_derived == naive.facts_derived

    def test_seminaive_fewer_duplicates_on_dense_input(self):
        db = Database.from_dict({"edge": complete(6)})
        semi = evaluate(TC, db).stats
        naive = evaluate(TC, db, EngineOptions(strategy="naive")).stats
        assert semi.duplicates <= naive.duplicates


class TestWorkInvariants:
    @pytest.mark.parametrize(
        "edges", [chain(10), cycle(7), complete(5)], ids=["chain", "cycle", "dense"]
    )
    def test_firings_equals_facts_plus_duplicates(self, edges):
        db = Database.from_dict({"edge": edges})
        stats = evaluate(TC, db).stats
        assert stats.rule_firings == stats.facts_derived + stats.duplicates

    def test_fact_counts_match_relations(self):
        db = Database.from_dict({"edge": chain(6)})
        result = evaluate(TC, db)
        assert result.stats.fact_counts["tc"] == len(result.facts("tc"))

    def test_facts_derived_excludes_preexisting(self):
        db = Database.from_dict({"edge": chain(3), "tc": [(0, 1)]})
        stats = evaluate(TC, db).stats
        # closure of a 3-node chain is {(0,1),(1,2),(0,2)}; (0,1) was an
        # input fact, so only two facts are newly derived
        assert stats.fact_counts["tc"] == 3
        assert stats.facts_derived == 2


class TestDeltaDiscipline:
    def test_linear_rule_work_linear_on_chain(self):
        """On a chain, right-linear TC derives each of the O(n²) facts
        from exactly one (edge, delta) pair: firings == derivations
        stays quadratic, not cubic."""
        n = 20
        db = Database.from_dict({"edge": chain(n)})
        stats = evaluate(TC, db).stats
        facts = n * (n - 1) // 2
        assert stats.facts_derived == facts
        # each fact derived at most twice (once per rule overlap)
        assert stats.rule_firings <= 2 * facts + n

    def test_no_rescan_after_fixpoint(self):
        db = Database.from_dict({"edge": chain(10)})
        first = evaluate(TC, db)
        again = evaluate(TC, first.db)
        assert again.stats.facts_derived == 0
        # one verification round over initial-facts deltas, then done
        assert again.stats.iterations <= 2

    def test_delta_starts_each_rule_at_changed_literal(self):
        # mutual recursion: deltas must flow across predicates
        program = parse(
            """
            a(X) :- seed(X).
            b(Y) :- a(X), ab(X, Y).
            a(Y) :- b(X), ba(X, Y).
            ?- a(X).
            """
        )
        db = Database.from_dict(
            {
                "seed": [(0,)],
                "ab": [(i, i + 1) for i in range(0, 20, 2)],
                "ba": [(i, i + 1) for i in range(1, 20, 2)],
            }
        )
        result = evaluate(program, db)
        assert result.answers() == {(i,) for i in range(0, 21, 2)}
