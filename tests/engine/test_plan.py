"""Unit tests for rule compilation and join planning."""

from repro.datalog import Database, parse_rule
from repro.datalog.terms import Variable
from repro.engine import EvalStats, compile_rule, order_body
from repro.engine.plan import match_plan


class TestOrderBody:
    def test_constant_literal_first(self):
        r = parse_rule("h(X) :- a(X, Y), b(1, X).")
        plans = order_body(r.body)
        assert plans[0].atom.predicate == "b"  # has a constant → most bound

    def test_bound_positions_accumulate(self):
        r = parse_rule("h(X) :- a(X, Y), b(Y, Z).")
        plans = order_body(r.body)
        first, second = plans
        assert first.bound_positions == ()
        assert second.bound_positions == (0,)  # Y bound by first literal

    def test_forced_first(self):
        r = parse_rule("h(X) :- a(X, Y), b(Y, Z).")
        plans = order_body(r.body, first=1)
        assert plans[0].atom.predicate == "b"
        assert plans[1].bound_positions == (1,)  # Y now bound by b

    def test_deterministic_tie_break_original_order(self):
        r = parse_rule("h(X) :- a(X, Y), c(X, Z).")
        plans = order_body(r.body)
        assert plans[0].atom.predicate == "a"

    def test_tie_break_contract_is_body_index_not_name(self):
        """The documented contract: an exact score tie goes to the
        smallest body index — textual order, never predicate name."""
        r = parse_rule("h(X) :- zz(X, Y), aa(X, Z).")
        plans = order_body(r.body)
        assert [p.atom.predicate for p in plans] == ["zz", "aa"]

    def test_cost_model_tie_break_original_order(self):
        """The DP inherits the same contract: among equal-cost orders
        the lexicographically smallest index tuple (= original body
        order) wins, so plans are reproducible run to run."""
        from repro.engine.cost import BoundCostModel, RelationProfile

        r = parse_rule("h(X) :- zz(X, Y), aa(X, Z).")
        profile = RelationProfile(15, (1, 1))
        model = BoundCostModel({"zz": profile, "aa": profile})
        plans = order_body(r.body, cost_model=model,
                           needed=frozenset(r.head.args))
        assert [p.atom.predicate for p in plans] == ["zz", "aa"]

    def test_repeated_variable_free_positions(self):
        r = parse_rule("h(X) :- a(X, X).")
        plans = order_body(r.body)
        assert plans[0].free_positions == (
            (0, Variable("X")),
            (1, Variable("X")),
        )


class TestLiteralPlan:
    def test_key_for_mixes_constants_and_bindings(self):
        r = parse_rule("h(X) :- b(1, X).")
        plan = order_body(r.body)[0]
        assert plan.key_for({}) == (1,)

    def test_bind_consistency(self):
        r = parse_rule("h(X) :- a(X, X).")
        plan = order_body(r.body)[0]
        assert plan.bind((1, 1), {}) == {Variable("X"): 1}
        assert plan.bind((1, 2), {}) is None


class TestMatchPlan:
    def run(self, rule_src, data, delta=None, subst=None):
        r = parse_rule(rule_src)
        plans = order_body(r.body, first=0 if delta is not None else None)
        db = Database.from_dict(data)
        stats = EvalStats()
        return list(
            match_plan(plans, db, stats, delta_rows=delta, subst=subst)
        ), stats

    def test_join(self):
        results, _ = self.run(
            "h(X, Z) :- a(X, Y), b(Y, Z).",
            {"a": [(1, 2), (1, 3)], "b": [(2, 5), (3, 6), (9, 9)]},
        )
        bindings = {
            (s[Variable("X")], s[Variable("Z")]) for s, _ in results
        }
        assert bindings == {(1, 5), (1, 6)}

    def test_body_rows_in_original_order(self):
        results, _ = self.run(
            "h(X) :- a(X, Y), b(Y, Z).",
            {"a": [(1, 2)], "b": [(2, 3)]},
        )
        (_, rows), = results
        assert rows == ((1, 2), (2, 3))

    def test_missing_relation_yields_nothing(self):
        results, _ = self.run("h(X) :- ghost(X).", {"a": [(1, 2)]})
        assert results == []

    def test_delta_restriction(self):
        results, _ = self.run(
            "h(X, Z) :- a(X, Y), b(Y, Z).",
            {"a": [(1, 2), (4, 5)], "b": [(2, 3), (5, 6)]},
            delta=frozenset({(1, 2)}),
        )
        assert len(results) == 1

    def test_stats_counters_move(self):
        _, stats = self.run(
            "h(X, Z) :- a(X, Y), b(Y, Z).",
            {"a": [(1, 2)], "b": [(2, 3)]},
        )
        assert stats.join_probes >= 2
        assert stats.rows_scanned >= 2

    def test_compile_rule_has_delta_plan_per_literal(self):
        r = parse_rule("h(X) :- a(X, Y), b(Y, Z), c(Z).")
        cr = compile_rule(r, 0)
        assert len(cr.delta_plans) == 3
        for i, plans in enumerate(cr.delta_plans):
            assert plans[0].body_index == i

    def test_head_values(self):
        r = parse_rule("h(X, 7) :- a(X).")
        cr = compile_rule(r, 0)
        assert cr.head_values({Variable("X"): 3}) == (3, 7)
