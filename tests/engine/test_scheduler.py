"""Unit tests for the SCC-condensation component scheduler.

Covers the scheduling guarantees the oracle suite cannot see from
answers alone: the iteration accounting (scheduled rounds never exceed
the monolithic loop's), the new unit counters, component-local cut
termination, and determinism of parallel execution.
"""

import pytest

from repro.datalog import Database, parse
from repro.datalog.errors import ValidationError
from repro.engine import EngineOptions, evaluate
from repro.workloads.edb import random_edb
from repro.workloads.families import all_families, boolean_chain, sibling_components

#: EDB under which every level of the default boolean_chain fires
CHAIN_DB = {
    "item": [(1,), (2,)],
    "c1": [(0, 1)],
    "c2": [(0, 1)],
    "c3": [(0, 1)],
    "mark": [(1,)],
}


def both(program, db, **overrides):
    scheduled = evaluate(program, db, EngineOptions(**overrides))
    monolithic = evaluate(program, db, EngineOptions(use_scc=False, **overrides))
    assert scheduled.answers() == monolithic.answers()
    return scheduled, monolithic


class TestIterationAccounting:
    # sibling_components is excluded by design: its three *recursive*
    # units run disjoint fixpoints whose rounds sum, while the
    # monolithic loop interleaves all three per round and pays only the
    # deepest one's count — that family's win is schedule length under
    # --parallel (units at one depth share wall-clock), not total
    # rounds.  Every other curated family must not regress.
    SWEEP = sorted(set(all_families()) - {"sibling_components"})

    @pytest.mark.parametrize("name", SWEEP)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_scheduled_rounds_never_exceed_monolithic(self, name, seed):
        program = all_families()[name]
        db = random_edb(program, rows=20, domain=8, seed=seed)
        scheduled, monolithic = both(program, db)
        assert scheduled.stats.iterations <= monolithic.stats.iterations, name

    def test_boolean_chain_strictly_fewer_rounds(self):
        """The multi-component boolean family: the monolithic loop pays
        one round per chain level (the query rule is listed first), the
        scheduler fires every non-recursive unit exactly once, outside
        any fixpoint loop."""
        program = boolean_chain()
        db = Database.from_dict(CHAIN_DB)
        scheduled, monolithic = both(program, db)
        assert scheduled.answers() == frozenset({(1,), (2,)})
        assert scheduled.stats.iterations < monolithic.stats.iterations
        assert scheduled.stats.iterations == 0  # four single-pass units
        assert scheduled.stats.units_scheduled == 4

    def test_unit_rounds_sum_to_iterations(self):
        program = sibling_components()
        db = random_edb(program, rows=20, domain=8, seed=3)
        result = evaluate(program, db)
        assert sum(result.stats.unit_rounds.values()) == result.stats.iterations
        assert set(result.stats.unit_rounds) == {"tc1", "tc2", "tc3", "q"}


class TestUnitCounters:
    def test_units_scheduled_and_labels(self):
        program = parse(
            """
            q(X) :- r(X, Y).
            r(X, Y) :- s(X, Z), r(Z, Y).
            r(X, Y) :- s(X, Y).
            s(X, Y) :- base(X, Y).
            ?- q(X).
            """
        )
        db = Database.from_dict({"base": [(1, 2), (2, 3)]})
        result = evaluate(program, db)
        stats = result.stats
        assert stats.units_scheduled == 3
        assert stats.units_parallel == 0  # parallel=1
        assert set(stats.unit_rounds) == {"s", "r", "q"}
        # only the recursive unit iterates; s and q are single passes
        assert stats.unit_rounds["s"] == 0 and stats.unit_rounds["q"] == 0
        assert stats.unit_rounds["r"] == stats.iterations >= 1

    def test_mutually_recursive_unit_has_joint_label(self):
        program = parse(
            """
            even(X) :- zero(X).
            even(Y) :- succ(X, Y), odd(X).
            odd(Y) :- succ(X, Y), even(X).
            ?- even(X).
            """
        )
        db = Database.from_dict({"zero": [(0,)], "succ": [(0, 1), (1, 2), (2, 3)]})
        result = evaluate(program, db)
        assert "even+odd" in result.stats.unit_rounds
        assert result.answers() == frozenset({(0,), (2,)})

    def test_no_scc_mode_reports_no_units(self):
        """--no-scc is the pre-scheduler engine: every new counter must
        stay at its zero value so its stats are bit-comparable with
        historical baselines."""
        program = sibling_components()
        db = random_edb(program, rows=15, domain=6, seed=0)
        stats = evaluate(program, db, EngineOptions(use_scc=False)).stats
        assert stats.units_scheduled == 0
        assert stats.units_parallel == 0
        assert stats.unit_early_exits == 0
        assert stats.unit_rounds == {}

    def test_parallel_requires_positive_width(self):
        with pytest.raises(ValidationError):
            EngineOptions(parallel=0)


class TestComponentLocalCut:
    def test_recursive_cut_unit_exits_mid_fixpoint(self):
        """A recursive boolean unit stops as soon as its head fires,
        even with delta facts still pending — the component-local
        generalization of the existential cut."""
        program = parse(
            """
            b :- link(U, V).
            b :- link(U, W), b.
            ?- b.
            """
        )
        db = Database.from_dict({"link": [(1, 2), (2, 3), (3, 4)]})
        opts = EngineOptions(cut_predicates=frozenset({"b"}))
        result = evaluate(program, db, opts)
        assert result.has_answer()
        assert result.stats.unit_early_exits == 1
        assert result.stats.iterations == 1  # first naive round only
        assert result.stats.rules_retired == 2

    def test_single_pass_cut_unit_skips_remaining_rules(self):
        """In a non-recursive cut unit the pass stops between rules the
        moment every head boolean is true; the untried rules retire
        unfired."""
        program = parse(
            """
            b :- c1(U).
            b :- c2(U).
            q(X) :- item(X), b.
            ?- q(X).
            """
        )
        db = Database.from_dict({"c1": [(1,)], "c2": [(1,), (2,)], "item": [(7,)]})
        opts = EngineOptions(cut_predicates=frozenset({"b"}))
        result = evaluate(program, db, opts)
        assert result.answers() == frozenset({(7,)})
        assert result.stats.unit_early_exits == 1
        assert result.stats.rules_retired == 2
        # the second rule never ran: its c2 scan would have cost 2 rows
        assert result.stats.rule_firings == 2  # b via c1, q via item

    def test_unsatisfied_cut_unit_runs_to_fixpoint(self):
        program = parse(
            """
            b :- c1(U), never(U).
            q(X) :- item(X), b.
            ?- q(X).
            """
        )
        db = Database.from_dict({"c1": [(1,)], "item": [(7,)]})
        opts = EngineOptions(cut_predicates=frozenset({"b"}))
        result = evaluate(program, db, opts)
        assert result.answers() == frozenset()
        assert result.stats.unit_early_exits == 0
        assert result.stats.rules_retired == 0


class TestDeterministicParallelism:
    def test_parallel_runs_are_bit_identical(self):
        """20 runs at --parallel 4 over >= 3 sibling recursive
        components: answers and the complete counter dict (including
        per-unit rounds) must be identical on every run — the thread
        pool's completion order must never leak into results."""
        program = sibling_components()
        make_db = lambda: random_edb(program, rows=20, domain=8, seed=3)
        opts = EngineOptions(parallel=4)
        first = evaluate(program, make_db(), opts)
        assert first.stats.units_parallel >= 3
        for _ in range(19):
            again = evaluate(program, make_db(), opts)
            assert again.answers() == first.answers()
            assert again.stats.as_dict() == first.stats.as_dict()

    def test_parallel_differs_from_sequential_only_in_batch_counter(self):
        program = sibling_components()
        make_db = lambda: random_edb(program, rows=20, domain=8, seed=3)
        seq = evaluate(program, make_db()).stats.as_dict()
        par = evaluate(program, make_db(), EngineOptions(parallel=4)).stats.as_dict()
        assert seq.pop("units_parallel") == 0
        assert par.pop("units_parallel") == 3
        assert seq == par

    def test_parallel_provenance_matches_sequential(self):
        program = sibling_components()
        make_db = lambda: random_edb(program, rows=20, domain=8, seed=3)
        seq = evaluate(
            program, make_db(), EngineOptions(record_provenance=True)
        )
        par = evaluate(
            program, make_db(), EngineOptions(record_provenance=True, parallel=4)
        )
        assert par.provenance == seq.provenance
