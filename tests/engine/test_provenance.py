"""Tests for derivation trees (section 1.1)."""

import pytest

from repro.datalog import Database, parse
from repro.engine import EngineOptions, evaluate
from repro.engine.provenance import DerivationTree, derivation_tree
from repro.workloads.graphs import chain


TC = parse(
    """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
    """
)


def eval_with_provenance(edges):
    db = Database.from_dict({"edge": edges})
    return evaluate(TC, db, EngineOptions(record_provenance=True))


class TestDerivationTrees:
    def test_base_fact_is_leaf_of_height_one(self):
        result = eval_with_provenance(chain(3))
        tree = result.derivation("edge", (0, 1))
        assert tree.is_leaf
        assert tree.height() == 1

    def test_derived_fact_has_rule_label(self):
        result = eval_with_provenance(chain(3))
        tree = result.derivation("tc", (0, 1))
        assert tree.rule_index == 0
        assert [c.predicate for c in tree.children] == ["edge"]

    def test_recursive_tree_structure(self):
        result = eval_with_provenance(chain(4))
        tree = result.derivation("tc", (0, 3))
        # tc(0,3) via rule 1: edge(0,1), tc(1,3)
        assert tree.rule_index == 1
        preds = sorted(c.predicate for c in tree.children)
        assert preds == ["edge", "tc"]

    def test_height_grows_with_path_length(self):
        result = eval_with_provenance(chain(6))
        short = result.derivation("tc", (0, 1)).height()
        long = result.derivation("tc", (0, 5)).height()
        assert long > short

    def test_leaves_are_base_facts(self):
        result = eval_with_provenance(chain(5))
        tree = result.derivation("tc", (0, 4))

        def leaves(t):
            if t.is_leaf:
                yield t
            for c in t.children:
                yield from leaves(c)

        assert all(leaf.predicate == "edge" for leaf in leaves(tree))

    def test_facts_set(self):
        result = eval_with_provenance(chain(3))
        tree = result.derivation("tc", (0, 2))
        assert ("tc", (0, 2)) in tree.facts()
        assert any(p == "edge" for p, _ in tree.facts())

    def test_size_counts_nodes(self):
        t = DerivationTree("p", (1,), 0, (DerivationTree("q", (2,), None),))
        assert t.size() == 2

    def test_render_contains_facts_and_rules(self):
        result = eval_with_provenance(chain(3))
        text = result.derivation("tc", (0, 2)).render()
        assert "tc(0, 2)" in text and "[rule" in text

    def test_unknown_fact_raises(self):
        result = eval_with_provenance(chain(3))
        with pytest.raises(Exception):
            result.derivation("tc", (99, 100))

    def test_cyclic_provenance_detected(self):
        from repro.engine.provenance import Justification

        bad = {
            ("p", (1,)): Justification(0, (("p", (1,)),)),
        }
        with pytest.raises(ValueError):
            derivation_tree(bad, "p", (1,))

    def test_provenance_not_recorded_by_default(self):
        db = Database.from_dict({"edge": chain(3)})
        result = evaluate(TC, db)
        assert result.provenance == {}
