"""Unit tests for the bottom-up fixpoint evaluator."""

import pytest

from repro.datalog import Database, EvaluationError, ValidationError, parse
from repro.engine import EngineOptions, evaluate
from repro.workloads.graphs import chain, complete, cycle, random_digraph


def tc_answers(edges):
    """Reference transitive closure computed independently."""
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(closure):
            for (c, d) in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return closure


TC = parse(
    """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
    """
)


class TestFixpointCorrectness:
    @pytest.mark.parametrize(
        "edges",
        [
            chain(6),
            cycle(5),
            complete(4),
            random_digraph(12, 20, seed=1),
            random_digraph(12, 40, seed=2),
        ],
        ids=["chain", "cycle", "complete", "sparse", "dense"],
    )
    def test_transitive_closure_matches_reference(self, edges):
        db = Database.from_dict({"edge": edges})
        result = evaluate(TC, db)
        assert result.facts("tc") == tc_answers(edges)

    def test_naive_equals_seminaive(self):
        db = Database.from_dict({"edge": random_digraph(15, 40, seed=3)})
        semi = evaluate(TC, db)
        naive = evaluate(TC, db, EngineOptions(strategy="naive"))
        assert semi.facts("tc") == naive.facts("tc")

    def test_empty_edb(self):
        db = Database()
        result = evaluate(TC, db)
        assert result.facts("tc") == frozenset()

    def test_input_not_mutated(self):
        db = Database.from_dict({"edge": [(1, 2), (2, 3)]})
        evaluate(TC, db)
        assert "tc" not in db

    def test_initial_idb_facts_respected(self):
        # uniform-equivalence style input: tc starts non-empty
        db = Database.from_dict({"edge": [(1, 2)], "tc": [(9, 10)]})
        result = evaluate(TC, db)
        assert (9, 10) in result.facts("tc")
        assert (1, 2) in result.facts("tc")

    def test_initial_idb_facts_feed_rules(self):
        db = Database.from_dict({"edge": [(1, 2)], "tc": [(2, 9)]})
        result = evaluate(TC, db)
        assert (1, 9) in result.facts("tc")

    def test_mutual_recursion(self):
        program = parse(
            """
            reach_a(X) :- start(X).
            reach_b(Y) :- reach_a(X), ab(X, Y).
            reach_a(Y) :- reach_b(X), ba(X, Y).
            ?- reach_a(X).
            """
        )
        db = Database.from_dict(
            {"start": [(0,)], "ab": [(0, 1), (2, 3)], "ba": [(1, 2)]}
        )
        result = evaluate(program, db)
        assert result.answers() == {(0,), (2,)}
        assert result.facts("reach_b") == {(1,), (3,)}

    def test_constants_in_rules(self):
        program = parse(
            """
            special(X) :- edge(1, X).
            ?- special(X).
            """
        )
        db = Database.from_dict({"edge": [(1, 2), (3, 4), (1, 5)]})
        assert evaluate(program, db).answers() == {(2,), (5,)}

    def test_fact_rules_seeded(self):
        program = parse(
            """
            base(1, 2).
            tc(X, Y) :- base(X, Y).
            ?- tc(X, Y).
            """
        )
        assert evaluate(program, Database()).answers() == {(1, 2)}

    def test_non_ground_fact_rejected(self):
        program = parse("p(X). ?- p(X).")
        with pytest.raises(ValidationError):
            evaluate(program, Database())

    def test_unsafe_rule_rejected(self):
        program = parse("p(X, Y) :- q(X). ?- p(X, Y).")
        with pytest.raises(Exception):
            evaluate(program, Database())

    def test_max_iterations_guard(self):
        db = Database.from_dict({"edge": chain(50)})
        with pytest.raises(EvaluationError):
            evaluate(TC, db, EngineOptions(max_iterations=2))


class TestAnswers:
    def test_selection_on_constant(self):
        db = Database.from_dict({"edge": chain(5)})
        program = TC.with_query(parse("x(X) :- y. ?- tc(0, Y).").query)
        result = evaluate(program, db)
        assert result.answers() == {(1,), (2,), (3,), (4,)}

    def test_repeated_variable_selection(self):
        # tc(X, X): nodes on cycles
        program = TC.with_query(parse("?- tc(X, X). x(X) :- y.").query)
        db = Database.from_dict({"edge": cycle(4) + [(9, 10)]})
        result = evaluate(program, db)
        assert result.answers() == {(0,), (1,), (2,), (3,)}

    def test_answers_without_query_raises(self):
        result = evaluate(TC.with_query(None), Database.from_dict({"edge": [(1, 2)]}))
        with pytest.raises(ValidationError):
            result.answers()

    def test_has_answer(self):
        db = Database.from_dict({"edge": [(1, 2)]})
        assert evaluate(TC, db).has_answer()
        assert not evaluate(TC, Database()).has_answer()

    def test_explicit_query_argument(self):
        db = Database.from_dict({"edge": chain(4)})
        result = evaluate(TC, db)
        from repro.datalog import atom

        assert result.answers(atom("tc", 0, "Y")) == {(1,), (2,), (3,)}


class TestStats:
    def test_fact_counts_recorded(self):
        db = Database.from_dict({"edge": chain(5)})
        stats = evaluate(TC, db).stats
        assert stats.fact_counts["tc"] == 10

    def test_duplicates_counted(self):
        # complete graph: many alternative derivations of each tc fact
        db = Database.from_dict({"edge": complete(4)})
        stats = evaluate(TC, db).stats
        assert stats.duplicates > 0
        assert stats.derivations == stats.facts_derived + stats.duplicates

    def test_merge(self):
        from repro.engine import EvalStats

        a = EvalStats(iterations=1, facts_derived=2)
        b = EvalStats(iterations=2, duplicates=3, fact_counts={"p": 1})
        a.merge(b)
        assert a.iterations == 3 and a.facts_derived == 2 and a.duplicates == 3
        assert a.fact_counts == {"p": 1}

    def test_summary_format(self):
        from repro.engine import EvalStats

        assert "iters=0" in EvalStats().summary()
