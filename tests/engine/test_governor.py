"""Unit tests for the resource governor.

Covers each limit (deadline, fact budget, delta budget, global and
per-unit iteration bounds), both ``on_limit`` policies, the structured
payload of :class:`ResourceExhausted`, and the guarantee that a
governor with limits *set but not hit* changes no engine counter.
"""

from dataclasses import replace

import pytest

from repro.datalog import Database, parse
from repro.datalog.errors import EvaluationError, ValidationError
from repro.engine import (
    EngineOptions,
    FaultPlan,
    IncrementalSession,
    ResourceExhausted,
    evaluate,
)

TC = """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
"""

SIBLINGS = """
    tc1(X, Y) :- e1(X, Y).
    tc1(X, Y) :- e1(X, Z), tc1(Z, Y).
    tc2(X, Y) :- e2(X, Y).
    tc2(X, Y) :- e2(X, Z), tc2(Z, Y).
    q(X) :- tc1(X, Y), tc2(X, Y).
    ?- q(X).
"""


def chain(n):
    return [(i, i + 1) for i in range(n)]


@pytest.fixture
def tc():
    return parse(TC), Database.from_dict({"edge": chain(20)})


@pytest.fixture
def siblings():
    return parse(SIBLINGS), Database.from_dict({"e1": chain(8), "e2": chain(8)})


class TestDeadline:
    def test_zero_deadline_raises_structured_error(self, tc):
        program, db = tc
        with pytest.raises(ResourceExhausted) as exc:
            evaluate(program, db, EngineOptions(deadline_s=0.0))
        err = exc.value
        assert err.reason == "deadline"
        assert isinstance(err, EvaluationError)  # catchable as ReproError
        assert err.stats is not None
        assert err.stats.fact_counts  # finalized before raising
        assert err.stratum == 0
        assert err.unit == "tc"  # the offending unit, under scheduling

    def test_zero_deadline_partial_is_flagged_lower_bound(self, tc):
        program, db = tc
        full = evaluate(program, db)
        partial = evaluate(
            program, db, EngineOptions(deadline_s=0.0, on_limit="partial")
        )
        assert partial.is_partial
        assert partial.stats.aborted_reason == "deadline"
        assert partial.answers() <= full.answers()
        assert "PARTIAL" in partial.stats.summary()

    def test_generous_deadline_never_trips(self, tc):
        program, db = tc
        result = evaluate(program, db, EngineOptions(deadline_s=300.0))
        assert not result.is_partial
        assert result.answers() == evaluate(program, db).answers()

    def test_deadline_trips_inside_slowed_unit(self, tc):
        """slow-unit + deadline: the deterministic way to make the
        deadline fire inside a chosen unit — the error names it."""
        program, db = tc
        plan = FaultPlan(slow_unit=0, slow_s=0.05)
        with pytest.raises(ResourceExhausted) as exc:
            evaluate(
                program, db, EngineOptions(deadline_s=0.01, fault_plan=plan)
            )
        assert exc.value.reason == "deadline"
        assert exc.value.unit == "tc"

    def test_monolithic_deadline_reports_no_unit(self, tc):
        program, db = tc
        with pytest.raises(ResourceExhausted) as exc:
            evaluate(program, db, EngineOptions(deadline_s=0.0, use_scc=False))
        assert exc.value.reason == "deadline"
        assert exc.value.unit is None
        assert exc.value.stratum == 0


class TestDerivationBudgets:
    def test_max_facts_raise(self, tc):
        program, db = tc
        with pytest.raises(ResourceExhausted) as exc:
            evaluate(program, db, EngineOptions(max_facts=5))
        assert exc.value.reason == "max_facts"

    def test_max_facts_partial_is_subset(self, tc):
        program, db = tc
        full = evaluate(program, db)
        partial = evaluate(
            program, db, EngineOptions(max_facts=5, on_limit="partial")
        )
        assert partial.is_partial
        assert partial.stats.aborted_reason == "max_facts"
        assert partial.answers() < full.answers()
        # enforcement is at rule-firing granularity: the budget may be
        # overshot by at most the one firing in flight when it tripped,
        # never by a whole extra round
        assert partial.stats.facts_derived < full.stats.facts_derived

    def test_max_delta_rows_trips_on_recursion(self, tc):
        program, db = tc
        with pytest.raises(ResourceExhausted) as exc:
            evaluate(program, db, EngineOptions(max_delta_rows=3))
        assert exc.value.reason == "max_delta_rows"

    def test_budget_not_hit_is_invisible(self):
        """Limits set far above the run's needs must not change any
        engine counter except the governor's own check count.

        Fresh EDBs per run: shared base relations deliberately carry
        lazy index builds across runs, which would skew index_builds.
        """
        program = parse(TC)
        plain = evaluate(
            program, Database.from_dict({"edge": chain(20)})
        )
        governed = evaluate(
            program,
            Database.from_dict({"edge": chain(20)}),
            EngineOptions(
                deadline_s=300.0,
                max_facts=10**9,
                max_delta_rows=10**9,
                max_iterations=10**6,
                max_unit_iterations=10**6,
            ),
        )
        assert governed.answers() == plain.answers()
        a, b = plain.stats.as_dict(), governed.stats.as_dict()
        assert a.pop("governor_checks") == 0
        assert b.pop("governor_checks") > 0
        assert a == b


class TestIterationBounds:
    """Satellite regression: ``max_iterations`` is one global bound
    under both engines; ``max_unit_iterations`` is the per-unit knob
    the old SCC behaviour turned into."""

    def test_global_bound_is_global_under_scc(self, siblings):
        program, db = siblings
        baseline = evaluate(program, db)
        total = baseline.stats.iterations
        per_unit = max(baseline.stats.unit_rounds.values())
        # the sibling units' rounds sum: the global count strictly
        # exceeds any single unit's (the premise of the regression)
        assert total > per_unit >= 2

        # exactly the global count passes; one less trips — if the
        # bound were still per-unit, max_iterations=total-1 (far above
        # any single unit's rounds) would never trip
        ok = evaluate(program, db, EngineOptions(max_iterations=total))
        assert ok.answers() == baseline.answers()
        with pytest.raises(ResourceExhausted) as exc:
            evaluate(program, db, EngineOptions(max_iterations=total - 1))
        assert exc.value.reason == "max_iterations"

    def test_global_bound_matches_monolithic_count(self, siblings):
        """The same global bound governs the monolithic loop: its
        iteration total is its own stats.iterations, pinned here so
        the two engines document one quantity."""
        program, db = siblings
        mono = evaluate(program, db, EngineOptions(use_scc=False))
        total = mono.stats.iterations
        ok = evaluate(
            program, db, EngineOptions(use_scc=False, max_iterations=total)
        )
        assert ok.answers() == mono.answers()
        with pytest.raises(ResourceExhausted) as exc:
            evaluate(
                program, db,
                EngineOptions(use_scc=False, max_iterations=total - 1),
            )
        assert exc.value.reason == "max_iterations"

    def test_per_unit_knob_bounds_single_units(self, siblings):
        program, db = siblings
        baseline = evaluate(program, db)
        per_unit = max(baseline.stats.unit_rounds.values())
        ok = evaluate(
            program, db, EngineOptions(max_unit_iterations=per_unit)
        )
        assert ok.answers() == baseline.answers()
        with pytest.raises(ResourceExhausted) as exc:
            evaluate(
                program, db, EngineOptions(max_unit_iterations=per_unit - 1)
            )
        assert exc.value.reason == "max_unit_iterations"
        # the offending unit is one of the recursive siblings
        assert exc.value.unit in {"tc1", "tc2"}

    def test_resource_exhausted_is_evaluation_error(self, tc):
        """Core passes guard divergent chase fixpoints with
        max_iterations and catch EvaluationError; the governed error
        must stay inside that hierarchy."""
        program, db = tc
        with pytest.raises(EvaluationError):
            evaluate(program, db, EngineOptions(max_iterations=1))


class TestIncrementalBatchGovernance:
    """Budgets and deadlines apply **per update batch** of an
    :class:`IncrementalSession`: an ungoverned init followed by a tight
    batch trips inside that batch, leaves a flagged sound lower bound
    with exact ``partial`` subset semantics, and ``refresh()`` restores
    exactness.  (``session.options`` governs subsequent batches, so
    tests swap limits in after the generous init.)"""

    def _updated_reference(self, extra=(20, 21)):
        return evaluate(
            parse(TC), Database.from_dict({"edge": chain(20) + [extra]})
        )

    def test_zero_deadline_trips_the_batch_not_the_session(self, tc):
        program, db = tc
        session = IncrementalSession(program, db)
        session.options = replace(session.options, deadline_s=0.0)
        with pytest.raises(ResourceExhausted) as exc:
            session.insert({"edge": [(20, 21)]})
        assert exc.value.reason == "deadline"
        assert session.is_partial
        # the failed batch was still absorbed into the session counters
        assert session.stats.incremental_updates == 1

    def test_partial_insert_is_subset_and_refresh_restores(self, tc):
        program, db = tc
        full = self._updated_reference()
        session = IncrementalSession(program, db)
        session.options = replace(
            session.options, deadline_s=0.0, on_limit="partial"
        )
        stats = session.insert({"edge": [(20, 21)]})
        assert stats.aborted_reason == "deadline"
        assert session.is_partial
        assert session.answers() <= full.answers()
        assert session.facts("tc") <= full.facts("tc")
        session.options = replace(
            session.options, deadline_s=None, on_limit="raise"
        )
        refreshed = session.refresh()
        assert not session.is_partial
        assert refreshed.aborted_reason is None
        assert session.facts("tc") == full.facts("tc")
        assert session.answers() == full.answers()

    def test_partial_retraction_is_sound_and_refresh_restores(self, tc):
        program, db = tc
        session = IncrementalSession(program, db)
        full = evaluate(
            program,
            Database.from_dict(
                {"edge": [r for r in chain(20) if r != (10, 11)]}
            ),
        )
        session.options = replace(
            session.options, deadline_s=0.0, on_limit="partial"
        )
        stats = session.retract({"edge": [(10, 11)]})
        assert stats.aborted_reason == "deadline"
        assert session.is_partial
        # exact partial-subset semantics: the base deletion is applied,
        # and no stale derived fact survives
        assert (10, 11) not in session.facts("edge")
        assert session.facts("tc") <= full.facts("tc")
        session.options = replace(
            session.options, deadline_s=None, on_limit="raise"
        )
        session.refresh()
        assert not session.is_partial
        assert session.facts("tc") == full.facts("tc")

    def test_max_facts_applies_per_batch(self, tc):
        """The init derived hundreds of facts; a per-batch budget of 5
        must not count them — it trips only on the batch's own work."""
        program, db = tc
        full = self._updated_reference()
        session = IncrementalSession(program, db)
        session.options = replace(
            session.options, max_facts=5, on_limit="partial"
        )
        stats = session.insert({"edge": [(20, 21)]})
        assert stats.aborted_reason == "max_facts"
        assert session.facts("tc") <= full.facts("tc")
        # a following batch gets a fresh budget: small enough work passes
        tiny = session.retract({"edge": [(20, 21)]})
        assert tiny is not None  # the session keeps serving

    def test_max_delta_rows_applies_per_batch(self, tc):
        program, db = tc
        session = IncrementalSession(program, db)
        session.options = replace(
            session.options, max_delta_rows=2, on_limit="raise"
        )
        with pytest.raises(ResourceExhausted) as exc:
            session.insert({"edge": [(20, 21), (21, 22), (22, 23)]})
        assert exc.value.reason == "max_delta_rows"

    def test_generous_batch_limits_are_invisible(self, tc):
        """Mirror of test_budget_not_hit_is_invisible for maintenance:
        unhit per-batch limits change no counter but governor_checks."""
        program = parse(TC)

        def run(**limits):
            session = IncrementalSession(
                program, Database.from_dict({"edge": chain(10)})
            )
            if limits:
                session.options = replace(session.options, **limits)
            session.insert({"edge": [(10, 11)]})
            batch = session.retract({"edge": [(3, 4)]})
            return session, batch

        _, plain = run()
        _, governed = run(
            deadline_s=300.0, max_facts=10**9, max_delta_rows=10**9
        )
        a, b = plain.as_dict(), governed.as_dict()
        assert a.pop("governor_checks") == 0
        assert b.pop("governor_checks") > 0
        assert a == b


class TestOptionValidation:
    def test_bad_on_limit_rejected(self):
        with pytest.raises(ValidationError):
            EngineOptions(on_limit="ignore")

    @pytest.mark.parametrize(
        "field", ["max_iterations", "max_unit_iterations", "max_facts",
                  "max_delta_rows", "deadline_s"]
    )
    def test_negative_limits_rejected(self, field):
        with pytest.raises(ValidationError):
            EngineOptions(**{field: -1})


class TestParallelGovernance:
    def test_parallel_budget_trip_is_clean(self, siblings):
        """A limit tripped by one parallel unit cancels the others
        cooperatively; the error is structured, never a deadlock, and
        carries merged partial stats."""
        program, db = siblings
        opts = EngineOptions(parallel=4, max_facts=3)
        with pytest.raises(ResourceExhausted) as exc:
            evaluate(program, db, opts)
        assert exc.value.reason == "max_facts"
        assert exc.value.stats is not None

    def test_parallel_partial_is_subset(self, siblings):
        program, db = siblings
        full = evaluate(program, db)
        partial = evaluate(
            program, db,
            EngineOptions(parallel=4, max_facts=3, on_limit="partial"),
        )
        assert partial.is_partial
        assert partial.answers() <= full.answers()

    def test_parallel_unhit_limits_stay_deterministic(self):
        program = parse(SIBLINGS)
        opts = EngineOptions(
            parallel=4, deadline_s=300.0, max_facts=10**9
        )

        def run():
            # fresh EDB per run: shared base relations carry lazy
            # index builds across runs, which would skew index_builds
            db = Database.from_dict({"e1": chain(8), "e2": chain(8)})
            return evaluate(program, db, opts)

        first = run()
        for _ in range(5):
            again = run()
            assert again.answers() == first.answers()
            assert again.stats.as_dict() == first.stats.as_dict()
