"""Kernel/interpreter differential property suite.

The compiled kernels claim to be *bit-identical* to the plan
interpreter — not just the same answers, but the same fact counts, the
same work counters (the regression gates in ``run_report.py`` and the
frozen work baseline depend on them), and the same first-justification
provenance.  This suite checks full-state agreement on the curated
program families and on the 200 fixed random oracle programs
(``derandomize=True``; ``make check`` pins the Hypothesis seed), in
both index modes.

Answer-set agreement across *all* strategies lives in ``tests/oracle``;
this file owns the stronger claim about counters and provenance.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import EngineOptions, evaluate
from repro.workloads.edb import random_edb
from repro.workloads.families import all_families

from .strategies import random_programs

FAMILIES = all_families()


def _full_state(program, db_factory, **overrides):
    """(answers, fact counts, invariant counters, provenance) of one run.

    Each run gets a fresh database from *db_factory* so lazily built
    indexes carried on shared base relations (see ``Database.copy``)
    cannot leak work between the runs being compared.
    """
    res = evaluate(
        program,
        db_factory(),
        EngineOptions(record_provenance=True, **overrides),
    )
    return (
        res.answers(),
        res.stats.fact_counts,
        res.stats.as_dict(engine_invariant=True),
        res.provenance,
    )


def _assert_kernel_matches_interpreter(program, db):
    for use_indexes in (True, False):
        kern = _full_state(program, db.copy, use_indexes=use_indexes)
        interp = _full_state(
            program, db.copy, use_indexes=use_indexes, use_kernels=False
        )
        for part, kernel_side, interp_side in zip(
            ("answers", "fact_counts", "stats", "provenance"), kern, interp
        ):
            assert kernel_side == interp_side, (
                f"kernel/interpreter divergence in {part} "
                f"(use_indexes={use_indexes}): "
                f"kernel={kernel_side!r} interpreter={interp_side!r}"
            )


@pytest.mark.parametrize("name", sorted(FAMILIES))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_kernel_differential_on_curated_families(name, seed):
    program = FAMILIES[name]
    db = random_edb(program, rows=14, domain=7, seed=seed)
    _assert_kernel_matches_interpreter(program, db)


def test_kernel_path_is_not_vacuously_equal():
    """Guard: the default engine really launches kernels on the
    families — otherwise the differential above compares the
    interpreter with itself."""
    launched = 0
    for program in FAMILIES.values():
        db = random_edb(program, rows=10, domain=5, seed=0)
        launched += evaluate(program, db).stats.kernel_launches
    assert launched > 0


@given(random_programs(), st.integers(min_value=0, max_value=3))
@settings(
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_kernel_differential_on_random_programs(program, seed):
    """The 200 fixed random oracle programs: kernels and the
    interpreter agree on answers, fact counts, stats counters, and
    provenance, with and without indexes."""
    program.validate()
    db = random_edb(program, rows=10, domain=5, seed=seed)
    _assert_kernel_matches_interpreter(program, db)
