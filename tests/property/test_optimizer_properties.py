"""Property-based tests for the optimizer: every phase preserves the
query answer on random chain programs over random labelled graphs."""

from hypothesis import assume, given, settings

from repro.datalog import Atom, Program
from repro.datalog.terms import Variable
from repro.engine import EngineOptions, evaluate
from repro.core import adorn, delete_rules, optimize, push_projections
from repro.core.components import split_components
from repro.grammar.cfg import grammar_to_program
from repro.grammar.language import productive_nonterminals

from .strategies import chain_grammars, labelled_graphs


def program_from(grammar, existential=True):
    """A chain program for the grammar, queried as s^nd (anonymous
    second argument) or s^nn."""
    program = grammar_to_program(grammar)
    if existential:
        query = Atom("s", (Variable("X"), Variable("_1")))
        program = Program(program.rules, query)
    return program


def projected_reference(program, db):
    """First column of the original query's answers."""
    return {t[0] for t in evaluate(program.with_query(Atom("s", (Variable("X"), Variable("Y")))), db).answers()}


@given(chain_grammars(), labelled_graphs())
@settings(max_examples=50, deadline=None)
def test_full_pipeline_preserves_answers(grammar, db):
    assume("s" in grammar.nonterminals)
    program = program_from(grammar)
    result = optimize(program)
    got = {t[0] for t in result.answers(db)}
    assert got == projected_reference(program, db)


@given(chain_grammars(), labelled_graphs())
@settings(max_examples=50, deadline=None)
def test_projection_pushing_preserves_answers(grammar, db):
    assume("s" in grammar.nonterminals)
    program = program_from(grammar)
    projected = push_projections(adorn(program)).to_program()
    got = {t[0] for t in evaluate(projected, db).answers()}
    assert got == projected_reference(program, db)


@given(chain_grammars(), labelled_graphs())
@settings(max_examples=30, deadline=None)
def test_summary_deletion_preserves_answers(grammar, db):
    assume("s" in grammar.nonterminals)
    program = program_from(grammar)
    projected = push_projections(adorn(program))
    trimmed = delete_rules(projected, use_chase=False, use_sagiv=False)
    got = {t[0] for t in evaluate(trimmed.program.to_program(), db).answers()}
    assert got == projected_reference(program, db)


@given(chain_grammars(), labelled_graphs())
@settings(max_examples=25, deadline=None)
def test_chase_and_sagiv_deletion_preserve_answers(grammar, db):
    assume("s" in grammar.nonterminals)
    program = program_from(grammar)
    projected = push_projections(adorn(program))
    trimmed = delete_rules(projected)
    got = {t[0] for t in evaluate(trimmed.program.to_program(), db).answers()}
    assert got == projected_reference(program, db)


@given(chain_grammars(), labelled_graphs())
@settings(max_examples=30, deadline=None)
def test_component_split_preserves_answers(grammar, db):
    assume("s" in grammar.nonterminals)
    program = program_from(grammar)
    split = split_components(adorn(program), paper_mode=False)
    options = EngineOptions(cut_predicates=split.booleans)
    got = {
        t[0]
        for t in evaluate(split.program.to_program(), db, options).answers()
    }
    assert got == projected_reference(program, db)


@given(chain_grammars())
@settings(max_examples=50, deadline=None)
def test_optimizer_never_grows_recursive_arity(grammar):
    assume("s" in grammar.nonterminals)
    program = program_from(grammar)
    result = optimize(program)
    original_arities = program.arities()
    for pred, arity in result.program.arities().items():
        base = pred.split("@", 1)[0]
        if base in original_arities:
            assert arity <= original_arities[base]


@given(chain_grammars())
@settings(max_examples=40, deadline=None)
def test_unproductive_query_detected(grammar):
    """If the grammar start is unproductive, the optimizer discovers the
    empty answer at compile time (Example 8's emptiness detection)."""
    assume("s" in grammar.nonterminals)
    assume("s" not in productive_nonterminals(grammar))
    program = program_from(grammar)
    result = optimize(program)
    assert len(result.program) == 0
