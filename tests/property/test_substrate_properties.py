"""Property-based tests for the substrate: parser round-trips, relation
index coherence, and database algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Database, Relation, parse, parse_rule
from repro.datalog.ast import Atom, Program, Rule
from repro.datalog.terms import Constant, Variable


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

predicate_names = st.sampled_from(["p", "q", "r", "edge", "a1", "b_c"])
variable_names = st.sampled_from(["X", "Y", "Z", "W", "Count"])
constant_values = st.one_of(
    st.integers(min_value=-5, max_value=99),
    st.sampled_from(["abc", "foo", "v1"]),
)


@st.composite
def terms(draw):
    if draw(st.booleans()):
        return Variable(draw(variable_names))
    return Constant(draw(constant_values))


@st.composite
def atoms(draw, max_arity=3):
    name = draw(predicate_names)
    arity = draw(st.integers(min_value=0, max_value=max_arity))
    return Atom(name, tuple(draw(terms()) for _ in range(arity)))


@st.composite
def safe_rules(draw):
    """A random safe rule: head variables drawn from the body."""
    body = tuple(draw(atoms()) for _ in range(draw(st.integers(1, 3))))
    body_vars = [v for a in body for v in a.variables()]
    head_arity = draw(st.integers(0, 2))
    if body_vars:
        head_args = tuple(
            draw(st.sampled_from(body_vars))
            if draw(st.booleans())
            else Constant(draw(constant_values))
            for _ in range(head_arity)
        )
    else:
        head_args = tuple(
            Constant(draw(constant_values)) for _ in range(head_arity)
        )
    return Rule(Atom("h", head_args), body)


@st.composite
def rows(draw, arity):
    return tuple(
        draw(st.integers(min_value=0, max_value=9)) for _ in range(arity)
    )


# ---------------------------------------------------------------------------
# parser round-trips
# ---------------------------------------------------------------------------

@given(safe_rules())
@settings(max_examples=100, deadline=None)
def test_rule_pretty_print_parses_back(rule):
    """str -> parse -> str is the identity on safe rules."""
    printed = str(rule)
    reparsed = parse_rule(printed)
    assert str(reparsed) == printed


@given(st.lists(safe_rules(), min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_program_roundtrip(rules):
    program = Program(tuple(rules))
    reparsed = parse(str(program))
    assert str(reparsed) == str(program)


@given(atoms())
@settings(max_examples=100, deadline=None)
def test_atom_roundtrip(atom):
    from repro.datalog import parse_atom

    assert str(parse_atom(str(atom))) == str(atom)


# ---------------------------------------------------------------------------
# relation index coherence
# ---------------------------------------------------------------------------

@given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30))
@settings(max_examples=60, deadline=None)
def test_index_agrees_with_scan(data):
    rel = Relation(2, data)
    # build one index, then add more rows, then verify both indexes
    rel.index_for((0,))
    extra = {(i, (i * 3) % 5) for i in range(5)}
    rel.update(extra)
    everything = data | extra
    for key in {row[0] for row in everything}:
        assert set(rel.lookup((0,), (key,))) == {
            row for row in everything if row[0] == key
        }
    for key in {row[1] for row in everything}:
        assert set(rel.lookup((1,), (key,))) == {
            row for row in everything if row[1] == key
        }


@given(st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=20))
@settings(max_examples=60, deadline=None)
def test_relation_set_semantics(data):
    rel = Relation(2)
    added = sum(1 for row in list(data) * 2 if rel.add(row))
    assert added == len(data)
    assert rel.rows() == frozenset(data)


# ---------------------------------------------------------------------------
# database algebra
# ---------------------------------------------------------------------------

@given(
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=10),
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_merge_is_union(a_rows, b_rows):
    a = Database.from_dict({"p": a_rows})
    b = Database.from_dict({"p": b_rows})
    merged = a.merged_with(b)
    assert merged.rows("p") == frozenset(a_rows) | frozenset(b_rows)
    # operands untouched
    assert a.rows("p") == frozenset(a_rows)


@given(st.sets(st.tuples(st.integers(0, 4)), min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_copy_isolation(rows_):
    db = Database.from_dict({"p": rows_})
    clone = db.copy()
    clone.add("p", 99)
    assert (99,) not in db.rows("p")
    assert (99,) in clone.rows("p")


@given(st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_active_domain(rows_):
    db = Database.from_dict({"p": rows_})
    assert db.active_domain() == {v for row in rows_ for v in row}
