"""Pipeline differential testing over arbitrary random Datalog programs.

The chain-program generator in test_optimizer_properties covers the
grammar-shaped space; this module generates *unrestricted* safe Datalog
— mixed arities, shared variables, multiple derived predicates, random
recursion — and requires the full pipeline to preserve the projected
query answer on random databases.  This is the broadest soundness net
in the suite: any unsound adornment, projection, subsumption or
deletion shows up here as a falsifying program.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import evaluate
from repro.core import optimize
from repro.workloads.edb import random_edb

from .strategies import random_programs


@given(random_programs(), st.integers(min_value=0, max_value=4))
@settings(max_examples=120, deadline=None)
def test_pipeline_preserves_answers_on_random_programs(program, seed):
    program.validate()
    result = optimize(program)
    db = random_edb(program, rows=10, domain=5, seed=seed)
    assert result.answers(db) == result.reference_answers(db)


@given(random_programs(), st.integers(min_value=0, max_value=3))
@settings(max_examples=80, deadline=None)
def test_pipeline_work_bound_on_random_programs(program, seed):
    """The structural work bound on *adversarial* programs.

    The paper's "at least as well" claim holds on its examples and on
    the curated families (asserted in tests/integration and the bench
    suite); on arbitrary programs, adornment can fork a predicate into
    several query forms, and when none of them is deletable, inlinable
    or unfoldable the optimized program computes each surviving form
    once.  The principled bound is therefore (number of surviving
    adorned versions of any base predicate) × the original work, plus
    slack for arity-0 boolean guards.  See EXPERIMENTS.md "Known
    deviations".
    """
    from repro.core.adornment import split_adorned

    result = optimize(program)
    db = random_edb(program, rows=12, domain=6, seed=seed)
    original = evaluate(program, db).stats
    optimized = result.evaluate(db).stats

    versions: dict[str, set[str]] = {}
    for pred in result.program.idb_predicates():
        base, ad = split_adorned(pred)
        versions.setdefault(base, set()).add(pred)
    factor = max((len(v) for v in versions.values()), default=1)
    slack = 4 * len(result.program.rules) + 4
    assert optimized.derivations <= factor * original.derivations + slack


@given(random_programs())
@settings(max_examples=80, deadline=None)
def test_final_programs_validate(program):
    optimize(program).program.validate()


@given(random_programs(), st.integers(min_value=0, max_value=3))
@settings(max_examples=60, deadline=None)
def test_topdown_oracle_on_random_programs(program, seed):
    """Bottom-up vs tabled top-down on the same random programs."""
    from repro.engine.topdown import evaluate_topdown

    db = random_edb(program, rows=10, domain=5, seed=seed)
    td = evaluate_topdown(program, db)
    assert td.answers == evaluate(program, db).answers()
