"""Algebraic properties of argument-projection summaries (section 5).

The paper composes projections pairwise and takes summaries; the
soundness of Algorithm 5.1 and of the chain construction in
`query_rooted_summaries` rests on summarization being *lossless for
end-to-end connectivity*: summarizing a prefix never changes which
(left, right) node pairs the full composite connects.  These hypothesis
tests check that on random projections — pairwise composition is
associative and agrees with a direct connectivity computation over the
whole composite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.argument_projection import ArgumentProjection, identity_projection

ARITY = 3


@st.composite
def projections(draw, left, right):
    edges = draw(
        st.frozensets(
            st.tuples(
                st.integers(min_value=0, max_value=ARITY - 1),
                st.integers(min_value=0, max_value=ARITY - 1),
            ),
            max_size=6,
        )
    )
    return ArgumentProjection(left, right, edges)


def full_composite_summary(chain):
    """Reference: connectivity over the whole composite graph, with all
    middle literals' nodes merged at once.  Emits the same canonical
    form as pairwise composition: cross edges plus *hidden* same-side
    links (connected end pairs the cross edges alone don't imply)."""
    parent = {}

    def find(x):
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x, y):
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[rx] = ry

    for level, proj in enumerate(chain):
        for i, j in proj.edges:
            union((level, i), (level + 1, j))
        for a, b in proj.left_links:
            union((level, a), (level, b))
        for a, b in proj.right_links:
            union((level + 1, a), (level + 1, b))
    n = len(chain)
    left_nodes = chain[0].left_nodes()
    right_nodes = chain[-1].right_nodes()
    edges = frozenset(
        (i, k)
        for i in left_nodes
        for k in right_nodes
        if find((0, i)) == find((n, k))
    )
    implied = {}

    def ifind(x):
        implied.setdefault(x, x)
        while implied[x] != x:
            implied[x] = implied[implied[x]]
            x = implied[x]
        return x

    def iunion(x, y):
        rx, ry = ifind(x), ifind(y)
        if rx != ry:
            implied[rx] = ry

    for i, k in edges:
        iunion((0, i), (n, k))

    def hidden(nodes, level):
        ordered = sorted(nodes)
        return frozenset(
            (a, b)
            for x, a in enumerate(ordered)
            for b in ordered[x + 1 :]
            if find((level, a)) == find((level, b))
            and ifind((level, a)) != ifind((level, b))
        )

    return ArgumentProjection(
        chain[0].left,
        chain[-1].right,
        edges,
        hidden(left_nodes, 0),
        hidden(right_nodes, n),
    )


@given(projections("a", "b"), projections("b", "c"), projections("c", "d"))
@settings(max_examples=200, deadline=None)
def test_composition_associative(p, q, r):
    left = p.compose(q).compose(r)
    right = p.compose(q.compose(r))
    assert left == right


@given(projections("a", "b"), projections("b", "c"), projections("c", "d"))
@settings(max_examples=200, deadline=None)
def test_pairwise_equals_full_merge(p, q, r):
    if not (p.edges and q.edges and r.edges):
        return  # full_composite_summary needs non-empty ends to compare
    assert p.compose(q).compose(r) == full_composite_summary([p, q, r])


def _is_matching(p: ArgumentProjection) -> bool:
    lefts = [i for i, _ in p.edges]
    rights = [j for _, j in p.edges]
    return len(set(lefts)) == len(lefts) and len(set(rights)) == len(rights)


@given(projections("a", "b"))
@settings(max_examples=100, deadline=None)
def test_identity_neutral_on_matchings(p):
    """Identity is neutral exactly when *p* has no converging edges.

    With two edges sharing an endpoint, composing even with the
    identity exposes the implied equality as a new zigzag edge — that
    is the *correct* connectivity semantics (two body positions holding
    the same variable force their counterparts equal), so neutrality is
    only asserted for matching-shaped projections."""
    left_id = identity_projection("a", ARITY)
    right_id = identity_projection("b", ARITY)
    if _is_matching(p):
        assert left_id.compose(p) == p
        assert p.compose(right_id) == p
    else:
        # composition may only add edges, never drop them
        assert p.edges <= left_id.compose(p).edges
        assert p.edges <= p.compose(right_id).edges


def test_zigzag_edge_is_semantically_required():
    """The concrete witness for the docstring above: edges (0,0) and
    (1,0) force mid0 = mid1, so (1,1) must appear after composing with
    the identity."""
    p = ArgumentProjection("a", "b", frozenset({(0, 0), (1, 0), (0, 1)}))
    composed = identity_projection("a", ARITY).compose(p)
    assert (1, 1) in composed.edges


@given(projections("a", "a"), projections("a", "a"))
@settings(max_examples=100, deadline=None)
def test_closure_of_self_compositions_finite(p, q):
    """Algorithm 5.1 terminates: the closure over a 3-position predicate
    stays within the finite summary space."""
    from repro.core.argument_projection import summary_closure

    closure = summary_closure([p, q])
    assert len(closure) <= 2 ** (ARITY * ARITY) * 2
    # closed under one more composition round
    for a in closure:
        for b in closure:
            if a.right == b.left:
                assert a.compose(b) in closure
