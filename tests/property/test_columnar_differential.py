"""Columnar/tuple-kernel differential property suite.

The batch kernels claim to be *bit-identical* to the tuple kernels
(and hence the interpreter) on every engine-invariant counter — not
just the same answers, but the same fact counts, duplicates, join
probes, rows scanned, index builds, and per-unit rounds.  This suite
checks full-state agreement on the curated program families and on the
200 fixed random oracle programs (``derandomize=True``), in both index
modes and under the monolithic and parallel schedulers.

Provenance-recording runs route to the tuple path before the batch
compiler is consulted (batches carry no per-fact body rows), so the
provenance half of the contract lives in
``tests/property/test_kernel_differential.py`` unchanged.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import EngineOptions, evaluate
from repro.workloads.edb import random_edb
from repro.workloads.families import all_families

from .strategies import random_programs

FAMILIES = all_families()


def _full_state(program, db_factory, **overrides):
    """(answers, fact counts, invariant counters) of one run.

    Each run gets a fresh database from *db_factory* so lazily built
    indexes carried on shared base relations cannot leak work between
    the runs being compared.
    """
    res = evaluate(program, db_factory(), EngineOptions(**overrides))
    return (
        res.answers(),
        res.stats.fact_counts,
        res.stats.as_dict(engine_invariant=True),
    )


def _assert_columnar_matches(program, db, **base):
    for use_indexes in (True, False):
        col = _full_state(program, db.copy, use_indexes=use_indexes, **base)
        tup = _full_state(
            program,
            db.copy,
            use_indexes=use_indexes,
            use_columnar=False,
            **base,
        )
        interp = _full_state(
            program,
            db.copy,
            use_indexes=use_indexes,
            use_columnar=False,
            use_kernels=False,
            **base,
        )
        for part, c, t, i in zip(
            ("answers", "fact_counts", "stats"), col, tup, interp
        ):
            assert c == t, (
                f"columnar/tuple divergence in {part} "
                f"(use_indexes={use_indexes}, base={base}): "
                f"columnar={c!r} tuple={t!r}"
            )
            assert c == i, (
                f"columnar/interpreter divergence in {part} "
                f"(use_indexes={use_indexes}, base={base}): "
                f"columnar={c!r} interpreter={i!r}"
            )


@pytest.mark.parametrize("name", sorted(FAMILIES))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_columnar_differential_on_curated_families(name, seed):
    program = FAMILIES[name]
    db = random_edb(program, rows=14, domain=7, seed=seed)
    _assert_columnar_matches(program, db)


@pytest.mark.parametrize("name", ["right_linear_tc", "bill_of_materials"])
def test_columnar_differential_composes_with_scheduler_modes(name):
    """Parity holds under the monolithic loop and the parallel unit
    scheduler, not just the default sequential SCC schedule."""
    program = FAMILIES[name]
    db = random_edb(program, rows=14, domain=7, seed=0)
    _assert_columnar_matches(program, db, use_scc=False)
    _assert_columnar_matches(program, db, parallel=2)


def test_columnar_path_is_not_vacuously_equal():
    """The default engine really runs batch kernels on the families —
    otherwise the differential above compares the tuple path with
    itself.  Also pins the counter-visibility contract: columnar runs
    report batch work and a populated dictionary, tuple runs report
    neither."""
    batched = 0
    for program in FAMILIES.values():
        db = random_edb(program, rows=10, domain=5, seed=0)
        col = evaluate(program, db.copy()).stats
        tup = evaluate(program, db.copy(), EngineOptions(use_columnar=False)).stats
        batched += col.batch_probes
        if col.batch_probes:
            assert col.dict_size > 0
            assert col.batch_rows >= 0
        assert tup.batch_probes == 0
        assert tup.batch_rows == 0
        assert tup.dict_size == 0
        assert tup.columnar_fallbacks == 0
    assert batched > 0


@given(random_programs(), st.integers(min_value=0, max_value=3))
@settings(
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_columnar_differential_on_random_programs(program, seed):
    """The 200 fixed random oracle programs: batch kernels, tuple
    kernels and the interpreter agree on answers, fact counts and
    stats counters, with and without indexes."""
    program.validate()
    db = random_edb(program, rows=10, domain=5, seed=seed)
    _assert_columnar_matches(program, db)
