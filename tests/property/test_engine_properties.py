"""Property-based tests for the evaluation engine (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Database, parse
from repro.engine import EngineOptions, evaluate

from .strategies import edge_sets, labelled_graphs

TC = parse(
    """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
    """
)

SG = parse(
    """
    sg(X, Y) :- e(X, Z), e(Y, Z).
    sg(X, Y) :- e(X, U), sg(U, V), e(Y, V).
    ?- sg(X, Y).
    """
)


def reference_closure(edges):
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(closure):
            for (c, d) in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return closure


@given(edge_sets())
@settings(max_examples=60, deadline=None)
def test_tc_matches_independent_reference(edges):
    db = Database()
    db.ensure("edge", 2).update(edges)
    assert evaluate(TC, db).facts("tc") == reference_closure(edges)


@given(edge_sets())
@settings(max_examples=40, deadline=None)
def test_seminaive_equals_naive(edges):
    db = Database()
    db.ensure("edge", 2).update(edges)
    semi = evaluate(TC, db).facts("tc")
    naive = evaluate(TC, db, EngineOptions(strategy="naive")).facts("tc")
    assert semi == naive


@given(labelled_graphs())
@settings(max_examples=40, deadline=None)
def test_seminaive_equals_naive_same_generation(db):
    db2 = db.copy()
    semi = evaluate(SG, db).facts("sg")
    naive = evaluate(SG, db2, EngineOptions(strategy="naive")).facts("sg")
    assert semi == naive


@given(edge_sets(), edge_sets(max_edges=4))
@settings(max_examples=40, deadline=None)
def test_monotonicity(edges, extra):
    """Adding base facts never removes derived facts."""
    db1 = Database()
    db1.ensure("edge", 2).update(edges)
    db2 = Database()
    db2.ensure("edge", 2).update(edges | extra)
    assert evaluate(TC, db1).facts("tc") <= evaluate(TC, db2).facts("tc")


@given(edge_sets())
@settings(max_examples=40, deadline=None)
def test_fixpoint_idempotence(edges):
    """Re-evaluating over the fixpoint derives nothing new."""
    db = Database()
    db.ensure("edge", 2).update(edges)
    first = evaluate(TC, db)
    again = evaluate(TC, first.db)
    assert again.facts("tc") == first.facts("tc")
    assert again.stats.facts_derived == 0


@given(edge_sets())
@settings(max_examples=40, deadline=None)
def test_provenance_trees_ground_out(edges):
    """Every derived fact has a derivation tree whose leaves are base
    facts present in the input (paper section 1.1)."""
    db = Database()
    db.ensure("edge", 2).update(edges)
    result = evaluate(TC, db, EngineOptions(record_provenance=True))
    for row in result.facts("tc"):
        tree = result.derivation("tc", row)

        def check(t):
            if t.is_leaf:
                assert t.predicate == "edge" and t.row in edges
            else:
                for c in t.children:
                    check(c)

        check(tree)


@given(edge_sets())
@settings(max_examples=30, deadline=None)
def test_answers_subset_of_facts(edges):
    db = Database()
    db.ensure("edge", 2).update(edges)
    result = evaluate(TC, db)
    assert result.answers() <= result.facts("tc")


@given(edge_sets())
@settings(max_examples=40, deadline=None)
def test_topdown_agrees_with_bottom_up(edges):
    """The tabled top-down evaluator is a third independent oracle."""
    from repro.engine.topdown import evaluate_topdown

    db = Database()
    db.ensure("edge", 2).update(edges)
    assert evaluate_topdown(TC, db).answers == evaluate(TC, db).answers()


@given(edge_sets(), st.integers(min_value=0, max_value=7))
@settings(max_examples=40, deadline=None)
def test_topdown_bound_query_agrees(edges, source):
    from repro.datalog import Atom, Constant, Variable
    from repro.engine.topdown import evaluate_topdown

    db = Database()
    db.ensure("edge", 2).update(edges)
    program = TC.with_query(Atom("tc", (Constant(source), Variable("Y"))))
    td = evaluate_topdown(program, db)
    assert td.answers == evaluate(program, db).answers()
