"""Hypothesis strategies shared by the property-based tests (and the
differential oracle suite in tests/oracle)."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.datalog import Database
from repro.datalog.ast import Atom, Program, Rule
from repro.datalog.terms import Variable
from repro.grammar.cfg import Grammar, Production

NONTERMINALS = ["s", "t"]
TERMINALS = ["e", "f"]

#: signature pool for random_programs(): derived and base predicates
DERIVED = [("q", 2), ("r", 2), ("s", 1)]
BASE = [("e", 2), ("f", 1), ("g", 3)]
VARS = [Variable(n) for n in ("X", "Y", "Z", "W", "V")]


@st.composite
def random_rules(draw):
    """One safe rule over the DERIVED/BASE signature — mixed arities,
    shared variables, possible recursion through any derived head."""
    head_pred, head_arity = draw(st.sampled_from(DERIVED))
    body_len = draw(st.integers(min_value=1, max_value=3))
    body = []
    pool = []
    for _ in range(body_len):
        pred, arity = draw(st.sampled_from(BASE + DERIVED))
        args = tuple(draw(st.sampled_from(VARS)) for _ in range(arity))
        body.append(Atom(pred, args))
        pool.extend(args)
    # a guaranteed base literal keeps every rule's recursion grounded
    # often enough to be interesting without being vacuous
    if all(a.predicate in dict(DERIVED) for a in body):
        args = tuple(draw(st.sampled_from(VARS)) for _ in range(2))
        body.append(Atom("e", args))
        pool.extend(args)
    head_args = tuple(draw(st.sampled_from(pool)) for _ in range(head_arity))
    return Rule(Atom(head_pred, head_args), tuple(body))


@st.composite
def random_programs(draw):
    """An unrestricted safe Datalog program with an existential query.

    The broadest program space in the suite: any unsound engine or
    pipeline transformation shows up as a falsifying example here.
    """
    rules = tuple(
        draw(random_rules())
        for _ in range(draw(st.integers(min_value=2, max_value=5)))
    )
    # query an existing derived predicate, second position existential
    heads = [(r.head.predicate, r.head.arity) for r in rules]
    pred, arity = draw(st.sampled_from(heads))
    args = [Variable("QX")] + [Variable(f"_{i}") for i in range(1, arity)]
    query = Atom(pred, tuple(args[:arity]))
    return Program(rules, query)


@st.composite
def edge_sets(draw, max_nodes=8, max_edges=16):
    """A random set of directed edges over a small node domain."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=max_edges,
        )
    )
    return edges


@st.composite
def labelled_graphs(draw, labels=TERMINALS, max_nodes=6, max_edges_per_label=8):
    """A database with one binary relation per terminal label."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    db = Database()
    for label in labels:
        rel = db.ensure(label, 2)
        edges = draw(
            st.sets(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=max_edges_per_label,
            )
        )
        rel.update(edges)
    return db


@st.composite
def chain_grammars(draw, max_productions=5, max_rhs=3):
    """A random ε-free chain-program grammar over s/t and e/f."""
    symbols = NONTERMINALS + TERMINALS
    count = draw(st.integers(min_value=1, max_value=max_productions))
    productions = []
    for _ in range(count):
        lhs = draw(st.sampled_from(NONTERMINALS))
        rhs_len = draw(st.integers(min_value=1, max_value=max_rhs))
        rhs = tuple(draw(st.sampled_from(symbols)) for _ in range(rhs_len))
        productions.append(Production(lhs, rhs))
    # deduplicate, keep order
    productions = tuple(dict.fromkeys(productions))
    return Grammar(productions, start="s")


@st.composite
def right_linear_grammars(draw, max_productions=5, max_terminals=2):
    """A random right-linear grammar over s/t and e/f."""
    count = draw(st.integers(min_value=1, max_value=max_productions))
    productions = []
    for _ in range(count):
        lhs = draw(st.sampled_from(NONTERMINALS))
        k = draw(st.integers(min_value=1, max_value=max_terminals))
        terminals = tuple(draw(st.sampled_from(TERMINALS)) for _ in range(k))
        tail = draw(st.sampled_from(NONTERMINALS + [""]))
        rhs = terminals + ((tail,) if tail else ())
        productions.append(Production(lhs, rhs))
    productions = tuple(dict.fromkeys(productions))
    return Grammar(productions, start="s")
