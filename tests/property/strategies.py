"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.datalog import Database
from repro.grammar.cfg import Grammar, Production

NONTERMINALS = ["s", "t"]
TERMINALS = ["e", "f"]


@st.composite
def edge_sets(draw, max_nodes=8, max_edges=16):
    """A random set of directed edges over a small node domain."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=max_edges,
        )
    )
    return edges


@st.composite
def labelled_graphs(draw, labels=TERMINALS, max_nodes=6, max_edges_per_label=8):
    """A database with one binary relation per terminal label."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    db = Database()
    for label in labels:
        rel = db.ensure(label, 2)
        edges = draw(
            st.sets(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=max_edges_per_label,
            )
        )
        rel.update(edges)
    return db


@st.composite
def chain_grammars(draw, max_productions=5, max_rhs=3):
    """A random ε-free chain-program grammar over s/t and e/f."""
    symbols = NONTERMINALS + TERMINALS
    count = draw(st.integers(min_value=1, max_value=max_productions))
    productions = []
    for _ in range(count):
        lhs = draw(st.sampled_from(NONTERMINALS))
        rhs_len = draw(st.integers(min_value=1, max_value=max_rhs))
        rhs = tuple(draw(st.sampled_from(symbols)) for _ in range(rhs_len))
        productions.append(Production(lhs, rhs))
    # deduplicate, keep order
    productions = tuple(dict.fromkeys(productions))
    return Grammar(productions, start="s")


@st.composite
def right_linear_grammars(draw, max_productions=5, max_terminals=2):
    """A random right-linear grammar over s/t and e/f."""
    count = draw(st.integers(min_value=1, max_value=max_productions))
    productions = []
    for _ in range(count):
        lhs = draw(st.sampled_from(NONTERMINALS))
        k = draw(st.integers(min_value=1, max_value=max_terminals))
        terminals = tuple(draw(st.sampled_from(TERMINALS)) for _ in range(k))
        tail = draw(st.sampled_from(NONTERMINALS + [""]))
        rhs = terminals + ((tail,) if tail else ())
        productions.append(Production(lhs, rhs))
    productions = tuple(dict.fromkeys(productions))
    return Grammar(productions, start="s")
