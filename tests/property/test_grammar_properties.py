"""Property-based tests for the grammar correspondence (Lemma 4.1 and
the section-1.1 semantics)."""

from hypothesis import assume, given, settings

from repro.datalog import Database
from repro.engine import evaluate
from repro.grammar.cfg import grammar_to_program
from repro.grammar.equivalence import (
    query_equivalent_bounded,
    uniform_query_equivalent_bounded,
)
from repro.grammar.language import extended_language, language, shortest_word
from repro.grammar.regular import is_right_linear, nfa_accepts, right_linear_to_nfa

from .strategies import chain_grammars, labelled_graphs, right_linear_grammars

MAX_LEN = 4


def paths_spelling(db, word, max_nodes=8):
    """All (start, end) pairs connected by a path labelled *word*."""
    pairs = {(n, n) for n in range(max_nodes)}
    for symbol in word:
        edges = db.rows(symbol)
        pairs = {(a, d) for (a, b) in pairs for (c, d) in edges if b == c}
        if not pairs:
            return set()
    return pairs


@given(chain_grammars(max_rhs=2), labelled_graphs(max_nodes=5))
@settings(max_examples=40, deadline=None)
def test_words_yield_derived_facts(grammar, db):
    """Soundness of the correspondence: every word of L(G) that labels a
    path x→y witnesses the derived fact s(x, y)."""
    assume("s" in grammar.nonterminals)
    program = grammar_to_program(grammar)
    facts = evaluate(program, db).facts("s")
    for word in language(grammar, MAX_LEN):
        for pair in paths_spelling(db, word):
            assert pair in facts


@given(chain_grammars(max_rhs=2), labelled_graphs(max_nodes=4, max_edges_per_label=5))
@settings(max_examples=30, deadline=None)
def test_facts_on_short_dags_have_word_witnesses(grammar, db):
    """Completeness on acyclic graphs with short paths: every derived
    fact is witnessed by some word within the bound."""
    # keep only forward edges (DAG) so all paths have length < nodes
    dag = Database()
    for label in ("e", "f"):
        rel = dag.ensure(label, 2)
        rel.update((a, b) for (a, b) in db.rows(label) if a < b)
    assume("s" in grammar.nonterminals)
    program = grammar_to_program(grammar)
    facts = evaluate(program, dag).facts("s")
    witnessed = set()
    for word in language(grammar, MAX_LEN):
        witnessed |= paths_spelling(dag, word)
    assert facts <= witnessed


@given(chain_grammars(max_rhs=2))
@settings(max_examples=50, deadline=None)
def test_language_subset_of_extended(grammar):
    assert language(grammar, MAX_LEN) <= extended_language(grammar, MAX_LEN)


@given(chain_grammars(max_rhs=2))
@settings(max_examples=50, deadline=None)
def test_uniform_query_equivalence_implies_query_equivalence(grammar):
    """Lemma 4.1: L^ex equality is stronger than L equality — check the
    implication on grammar pairs (g, g-with-duplicate-production)."""
    doubled = type(grammar)(grammar.productions + grammar.productions[:1], "s")
    assert uniform_query_equivalent_bounded(grammar, doubled, MAX_LEN)
    assert query_equivalent_bounded(grammar, doubled, MAX_LEN)


@given(chain_grammars(max_rhs=2))
@settings(max_examples=50, deadline=None)
def test_shortest_word_is_in_language(grammar):
    word = shortest_word(grammar)
    if word is None:
        assert language(grammar, 6) == frozenset()
    else:
        assert word in language(grammar, len(word))


@given(right_linear_grammars())
@settings(max_examples=50, deadline=None)
def test_nfa_agrees_with_bounded_language(grammar):
    """The right-linear→NFA construction accepts exactly the language
    (checked on all strings up to the bound)."""
    assume("s" in grammar.nonterminals)
    nfa = right_linear_to_nfa(grammar)
    assert is_right_linear(grammar)
    words = language(grammar, MAX_LEN)
    for word in words:
        assert nfa_accepts(nfa, word)
    # exhaustive negative check over the alphabet up to length 3
    from itertools import product

    for k in range(1, 4):
        for candidate in product(("e", "f"), repeat=k):
            if candidate not in words:
                assert not nfa_accepts(nfa, candidate), candidate


@given(right_linear_grammars(), labelled_graphs(max_nodes=5))
@settings(max_examples=30, deadline=None)
def test_monadic_program_agrees_with_binary(grammar, db):
    """Theorem 3.3, constructive direction, randomized."""
    from repro.grammar.regular import monadic_program_for

    assume("s" in grammar.nonterminals)
    program = grammar_to_program(grammar)
    monadic = monadic_program_for(program)
    assert monadic is not None
    reference = {t[0] for t in evaluate(program, db).answers()}
    got = {t[0] for t in evaluate(monadic, db).answers()}
    assert reference == got
