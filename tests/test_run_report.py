"""The report harness degrades gracefully on damaged baselines.

``benchmarks/run_report.py`` diffs fresh measurements against the
committed ``BENCH_*.json`` files.  A missing or malformed baseline — a
fresh checkout, an interrupted earlier run, merge damage — must not
crash the report or fail the build: it warns, skips the comparison, and
rewrites the file.  Only a *real* regression (an optimized
configuration deriving more facts than a readable baseline recorded)
may exit nonzero.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from run_report import (  # noqa: E402
    VIOLATIONS,
    check_against_baseline,
    load_baseline,
)


@pytest.fixture(autouse=True)
def clean_violations():
    """The regression gate is a module global; isolate each test."""
    VIOLATIONS.clear()
    yield
    VIOLATIONS.clear()


class TestLoadBaseline:
    def test_missing_file_warns_and_returns_none(self, tmp_path, capsys):
        assert load_baseline(tmp_path / "BENCH_nope.json") is None
        err = capsys.readouterr().err
        assert "warning" in err and "BENCH_nope.json" in err

    def test_malformed_json_warns_and_returns_none(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"family": {"config": ')  # truncated mid-write
        assert load_baseline(path) is None
        err = capsys.readouterr().err
        assert "warning" in err and "unreadable" in err

    def test_non_object_json_warns_and_returns_none(self, tmp_path, capsys):
        path = tmp_path / "BENCH_list.json"
        path.write_text("[1, 2, 3]")
        assert load_baseline(path) is None
        assert "not a JSON object" in capsys.readouterr().err

    def test_binary_garbage_warns_and_returns_none(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bin.json"
        path.write_bytes(bytes([0xC3, 0x28, 0x00, 0xFF]))
        assert load_baseline(path) is None
        assert "warning" in capsys.readouterr().err

    def test_valid_baseline_round_trips(self, tmp_path, capsys):
        path = tmp_path / "BENCH_ok.json"
        payload = {"tc-n60": {"scheduled": {"facts_derived": 1830}}}
        path.write_text(json.dumps(payload))
        assert load_baseline(path) == payload
        assert capsys.readouterr().err == ""


class TestCheckAgainstBaseline:
    BASELINE = {"tc-n60": {"scheduled": {"facts_derived": 1830}}}

    def test_none_baseline_is_skipped(self):
        check_against_baseline("ENG", None, "tc-n60", "scheduled", 10**9)
        assert VIOLATIONS == []

    def test_matching_counts_pass(self):
        check_against_baseline("ENG", self.BASELINE, "tc-n60", "scheduled", 1830)
        assert VIOLATIONS == []

    def test_fewer_facts_pass(self):
        # optimization is allowed to *reduce* derived facts
        check_against_baseline("ENG", self.BASELINE, "tc-n60", "scheduled", 1829)
        assert VIOLATIONS == []

    def test_extra_facts_is_a_real_regression(self):
        check_against_baseline("ENG", self.BASELINE, "tc-n60", "scheduled", 1831)
        assert len(VIOLATIONS) == 1
        assert "1831" in VIOLATIONS[0] and "1830" in VIOLATIONS[0]

    def test_unknown_family_or_config_skipped(self):
        check_against_baseline("ENG", self.BASELINE, "new-family", "scheduled", 5)
        check_against_baseline("ENG", self.BASELINE, "tc-n60", "new-config", 5)
        assert VIOLATIONS == []

    def test_hand_damaged_entries_skipped(self):
        damaged = {
            "tc-n60": "oops-not-a-dict",
            "other": {"scheduled": {"facts_derived": "NaN"}},
        }
        check_against_baseline("ENG", damaged, "tc-n60", "scheduled", 5)
        check_against_baseline("ENG", damaged, "other", "scheduled", 5)
        assert VIOLATIONS == []
