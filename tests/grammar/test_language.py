"""Tests for bounded L(G) / L^ex(G) enumeration."""

import pytest

from repro.grammar.cfg import Grammar, Production
from repro.grammar.language import (
    extended_language,
    is_empty,
    language,
    productive_nonterminals,
    reachable_nonterminals,
    shortest_word,
)


def grammar(*prods, start):
    productions = tuple(
        Production(lhs, tuple(rhs.split())) for lhs, rhs in prods
    )
    return Grammar(productions, start)


TC = grammar(("a", "e a"), ("a", "e"), start="a")
ANBN = grammar(("s", "x s y"), ("s", "x y"), start="s")


class TestProductivity:
    def test_tc_productive(self):
        assert productive_nonterminals(TC) == {"a"}

    def test_no_exit_unproductive(self):
        g = grammar(("a", "e a"), start="a")
        assert productive_nonterminals(g) == frozenset()

    def test_mutual_productivity(self):
        g = grammar(("a", "x b"), ("b", "y a"), ("b", "y"), start="a")
        assert productive_nonterminals(g) == {"a", "b"}


class TestReachability:
    def test_from_start(self):
        g = grammar(("a", "x b"), ("b", "y"), ("c", "z"), start="a")
        assert reachable_nonterminals(g) == {"a", "b"}


class TestEmptiness:
    def test_nonempty(self):
        assert not is_empty(TC)

    def test_empty_no_exit(self):
        assert is_empty(grammar(("a", "e a"), start="a"))


class TestLanguage:
    def test_tc_prefixes(self):
        assert language(TC, 3) == {("e",), ("e", "e"), ("e", "e", "e")}

    def test_anbn(self):
        words = language(ANBN, 6)
        assert words == {
            ("x", "y"),
            ("x", "x", "y", "y"),
            ("x", "x", "x", "y", "y", "y"),
        }

    def test_zero_bound(self):
        assert language(TC, 0) == frozenset()

    def test_terminal_start(self):
        assert language(TC.with_start("e"), 2) == {("e",)}

    def test_cap(self):
        g = grammar(("a", "x a"), ("a", "y a"), ("a", "x"), start="a")
        with pytest.raises(MemoryError):
            language(g, 40, max_strings=100)


class TestExtendedLanguage:
    def test_includes_nonterminal_forms(self):
        forms = extended_language(TC, 2)
        assert ("a",) in forms
        assert ("e", "a") in forms
        assert ("e", "e") in forms

    def test_distinguishes_left_right_linear(self):
        # same L but different L^ex: the paper's uniform-equivalence
        # separation between left- and right-linear TC (Example 5)
        left = grammar(("a", "a e"), ("a", "e"), start="a")
        right = grammar(("a", "e a"), ("a", "e"), start="a")
        assert language(left, 4) == language(right, 4)
        assert extended_language(left, 4) != extended_language(right, 4)

    def test_extended_superset_of_language(self):
        assert language(TC, 4) <= extended_language(TC, 4)


class TestShortestWord:
    def test_tc(self):
        assert shortest_word(TC) == ("e",)

    def test_anbn(self):
        assert shortest_word(ANBN) == ("x", "y")

    def test_empty(self):
        assert shortest_word(grammar(("a", "e a"), start="a")) is None

    def test_terminal_start(self):
        assert shortest_word(TC.with_start("e")) == ("e",)
