"""Tests for Theorem 3.3 machinery: self-embedding, NFAs, and the
monadic-program construction."""

import pytest

from repro.datalog import Database, TransformError, parse
from repro.engine import evaluate
from repro.grammar.cfg import Grammar, Production
from repro.grammar.language import language
from repro.grammar.regular import (
    is_left_linear,
    is_right_linear,
    is_self_embedding,
    monadic_program_for,
    nfa_accepts,
    right_linear_to_nfa,
)
from repro.workloads.graphs import chain, random_digraph


def grammar(*prods, start):
    return Grammar(
        tuple(Production(lhs, tuple(rhs.split())) for lhs, rhs in prods), start
    )


TC = grammar(("a", "e a"), ("a", "e"), start="a")
ANBN = grammar(("s", "x s y"), ("s", "x y"), start="s")


class TestSelfEmbedding:
    def test_right_linear_not_self_embedding(self):
        assert not is_self_embedding(TC)

    def test_anbn_self_embedding(self):
        assert is_self_embedding(ANBN)

    def test_indirect_self_embedding(self):
        g = grammar(("a", "x b"), ("b", "a y"), ("b", "z"), start="a")
        # a => x b => x a y : self-embedding via b
        assert is_self_embedding(g)

    def test_center_recursion_without_context_not_embedding(self):
        g = grammar(("a", "x a"), ("a", "a y"), ("a", "z"), start="a")
        # left AND right recursion on the same nonterminal IS
        # self-embedding (a => x a => x a y)
        assert is_self_embedding(g)

    def test_pure_left_recursion(self):
        g = grammar(("a", "a x"), ("a", "x"), start="a")
        assert not is_self_embedding(g)


class TestLinearity:
    def test_right_linear(self):
        assert is_right_linear(TC)
        assert not is_right_linear(ANBN)

    def test_left_linear(self):
        g = grammar(("a", "a e"), ("a", "e"), start="a")
        assert is_left_linear(g)
        assert not is_right_linear(g)

    def test_terminal_only(self):
        g = grammar(("a", "x y"), start="a")
        assert is_right_linear(g) and is_left_linear(g)


class TestNFA:
    def test_tc_nfa_accepts_e_plus(self):
        nfa = right_linear_to_nfa(TC)
        assert nfa_accepts(nfa, ["e"])
        assert nfa_accepts(nfa, ["e"] * 5)
        assert not nfa_accepts(nfa, [])
        assert not nfa_accepts(nfa, ["f"])

    def test_multi_terminal_production(self):
        g = grammar(("a", "x y a"), ("a", "z"), start="a")
        nfa = right_linear_to_nfa(g)
        assert nfa_accepts(nfa, ["z"])
        assert nfa_accepts(nfa, ["x", "y", "z"])
        assert nfa_accepts(nfa, ["x", "y", "x", "y", "z"])
        assert not nfa_accepts(nfa, ["x", "z"])

    def test_unit_productions_resolved(self):
        g = grammar(("a", "b"), ("b", "x b"), ("b", "x"), start="a")
        nfa = right_linear_to_nfa(g)
        assert nfa_accepts(nfa, ["x"])
        assert nfa_accepts(nfa, ["x", "x"])

    def test_rejects_non_right_linear(self):
        with pytest.raises(TransformError):
            right_linear_to_nfa(ANBN)

    def test_agreement_with_bounded_language(self):
        g = grammar(("a", "x b"), ("b", "y b"), ("b", "y"), ("a", "z a"), ("a", "z"), start="a")
        nfa = right_linear_to_nfa(g)
        words = language(g, 5)
        # every enumerated word is accepted
        assert all(nfa_accepts(nfa, w) for w in words)
        # and a non-member is rejected
        assert not nfa_accepts(nfa, ("y", "x"))


class TestMonadicProgram:
    def tc_program(self):
        return parse(
            """
            a(X, Y) :- e(X, Z), a(Z, Y).
            a(X, Y) :- e(X, Y).
            ?- a(X, Y).
            """
        )

    def test_construction_matches_projection(self):
        program = self.tc_program()
        monadic = monadic_program_for(program)
        assert monadic is not None
        arities = monadic.arities()
        assert all(
            arities[p] == 1 for p in monadic.idb_predicates()
        )  # monadic indeed
        for seed in range(3):
            db = Database.from_dict({"e": random_digraph(12, 25, seed=seed)})
            reference = {t[0] for t in evaluate(program, db).answers()}
            got = {t[0] for t in evaluate(monadic, db).answers()}
            assert reference == got

    def test_chain_graph(self):
        program = self.tc_program()
        monadic = monadic_program_for(program)
        db = Database.from_dict({"e": chain(10)})
        assert {t[0] for t in evaluate(monadic, db).answers()} == set(range(9))

    def test_non_right_linear_returns_none(self):
        program = parse(
            """
            s(X, Y) :- x(X, Z1), s(Z1, Z2), y(Z2, Y).
            s(X, Y) :- x(X, Z), y(Z, Y).
            ?- s(X, Y).
            """
        )
        assert monadic_program_for(program) is None

    def test_multi_nonterminal_language(self):
        program = parse(
            """
            a(X, Y) :- u(X, Z), b(Z, Y).
            b(X, Y) :- v(X, Z), b(Z, Y).
            b(X, Y) :- v(X, Y).
            ?- a(X, Y).
            """
        )
        monadic = monadic_program_for(program)
        assert monadic is not None
        db = Database.from_dict({"u": [(0, 1)], "v": [(1, 2), (2, 3)]})
        assert {t[0] for t in evaluate(monadic, db).answers()} == {0}
