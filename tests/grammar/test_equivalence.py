"""Tests for the bounded Lemma 4.1 equivalence checks."""

from repro.datalog import parse
from repro.grammar.cfg import program_to_grammar
from repro.grammar.equivalence import (
    db_equivalent_bounded,
    query_equivalent_bounded,
    uniform_query_equivalent_bounded,
    uniformly_equivalent_bounded,
)


def g(src):
    return program_to_grammar(parse(src))


LEFT = g(
    """
    a(X, Y) :- a(X, Z), e(Z, Y).
    a(X, Y) :- e(X, Y).
    ?- a(X, Y).
    """
)
RIGHT = g(
    """
    a(X, Y) :- e(X, Z), a(Z, Y).
    a(X, Y) :- e(X, Y).
    ?- a(X, Y).
    """
)
DOUBLED = g(
    """
    a(X, Y) :- e(X, Z), a(Z, Y).
    a(X, Y) :- e(X, Z), e(Z, Y).
    a(X, Y) :- e(X, Y).
    ?- a(X, Y).
    """
)


class TestLemma41:
    def test_left_right_query_equivalent(self):
        # both generate e+ — notions 1 and 2 agree
        assert query_equivalent_bounded(LEFT, RIGHT, 6)
        assert db_equivalent_bounded(LEFT, RIGHT, 6)

    def test_left_right_not_uniformly_equivalent(self):
        # Example 5's phenomenon at the grammar level: L^ex differs
        # (e a vs a e sentential forms)
        assert not uniformly_equivalent_bounded(LEFT, RIGHT, 4)
        assert not uniform_query_equivalent_bounded(LEFT, RIGHT, 4)

    def test_redundant_rule_db_equivalent(self):
        assert db_equivalent_bounded(RIGHT, DOUBLED, 6)
        assert query_equivalent_bounded(RIGHT, DOUBLED, 6)

    def test_redundant_rule_uniformly_equivalent(self):
        # e a ∈ L^ex both ways; e e reachable in both; the doubled rule
        # adds no new sentential forms... except 'e e' was already
        # derivable. Check the bounded sets agree.
        assert uniformly_equivalent_bounded(RIGHT, DOUBLED, 5)
        assert uniform_query_equivalent_bounded(RIGHT, DOUBLED, 5)

    def test_self_equivalence_all_notions(self):
        for check in (
            db_equivalent_bounded,
            query_equivalent_bounded,
            uniformly_equivalent_bounded,
            uniform_query_equivalent_bounded,
        ):
            assert check(RIGHT, RIGHT, 5)

    def test_query_equivalent_but_not_db(self):
        # same start language, but an extra nonterminal with a
        # different private language
        g1 = g(
            """
            a(X, Y) :- e(X, Y).
            b(X, Y) :- f(X, Y).
            ?- a(X, Y).
            """
        )
        g2 = g(
            """
            a(X, Y) :- e(X, Y).
            b(X, Y) :- h(X, Y).
            ?- a(X, Y).
            """
        )
        assert query_equivalent_bounded(g1, g2, 4)
        assert not db_equivalent_bounded(g1, g2, 4)

    def test_uniform_query_ignores_other_nonterminals(self):
        g1 = g(
            """
            a(X, Y) :- e(X, Y).
            b(X, Y) :- f(X, Y).
            ?- a(X, Y).
            """
        )
        g2 = g(
            """
            a(X, Y) :- e(X, Y).
            b(X, Y) :- h(X, Y).
            ?- a(X, Y).
            """
        )
        assert uniform_query_equivalent_bounded(g1, g2, 4)
        assert not uniformly_equivalent_bounded(g1, g2, 4)
