"""Tests for the chain-program ↔ CFG transformation (section 1.1)."""

import pytest

from repro.datalog import Database, TransformError, ValidationError, parse
from repro.engine import evaluate
from repro.grammar.cfg import (
    Production,
    grammar_to_program,
    program_to_grammar,
)
from repro.workloads.graphs import chain


RIGHT_TC = parse(
    """
    a(X, Y) :- e(X, Z), a(Z, Y).
    a(X, Y) :- e(X, Y).
    ?- a(X, Y).
    """
)


class TestProduction:
    def test_no_epsilon(self):
        with pytest.raises(ValidationError):
            Production("a", ())

    def test_str(self):
        assert str(Production("a", ("e", "a"))) == "a -> e a"


class TestGrammar:
    def test_nonterminals_and_terminals(self):
        g = program_to_grammar(RIGHT_TC)
        assert g.nonterminals == {"a"}
        assert g.terminals == {"e"}
        assert g.start == "a"

    def test_productions_for(self):
        g = program_to_grammar(RIGHT_TC)
        assert len(g.productions_for("a")) == 2
        assert g.productions_for("zzz") == ()

    def test_with_start(self):
        g = program_to_grammar(RIGHT_TC).with_start("e")
        assert g.start == "e"


class TestProgramToGrammar:
    def test_tc_productions(self):
        g = program_to_grammar(RIGHT_TC)
        assert set(map(str, g.productions)) == {"a -> e a", "a -> e"}

    def test_rejects_non_chain(self):
        p = parse("a(X) :- e(X, Y). ?- a(X).")
        with pytest.raises(TransformError):
            program_to_grammar(p)

    def test_explicit_start(self):
        g = program_to_grammar(RIGHT_TC, start="e")
        assert g.start == "e"

    def test_requires_query_for_default_start(self):
        with pytest.raises(TransformError):
            program_to_grammar(RIGHT_TC.with_query(None))

    def test_multi_symbol_chain(self):
        p = parse(
            """
            s(X, Y) :- a(X, Z1), s(Z1, Z2), b(Z2, Y).
            s(X, Y) :- a(X, Z), b(Z, Y).
            ?- s(X, Y).
            """
        )
        g = program_to_grammar(p)
        assert set(map(str, g.productions)) == {"s -> a s b", "s -> a b"}


class TestGrammarToProgram:
    def test_roundtrip(self):
        g = program_to_grammar(RIGHT_TC)
        p = grammar_to_program(g)
        assert program_to_grammar(p).productions == g.productions

    def test_roundtrip_is_chain_program(self):
        from repro.datalog.analysis import is_chain_program

        g = program_to_grammar(RIGHT_TC)
        assert is_chain_program(grammar_to_program(g))

    def test_semantic_correspondence_on_paths(self):
        # a word w ∈ L(G) labels a path x→y iff the program derives a(x,y)
        g = program_to_grammar(RIGHT_TC)
        p = grammar_to_program(g)
        db = Database.from_dict({"e": chain(5)})
        facts = evaluate(p, db).facts("a")
        assert (0, 4) in facts and (4, 0) not in facts

    def test_query_args(self):
        g = program_to_grammar(RIGHT_TC)
        p = grammar_to_program(g, query_args=(1, "Y"))
        assert str(p.query) == "a(1, Y)"
