"""Unit tests for the diagnostics engine (codes, report, renderers)."""

import json

from repro.analysis import CODES, Diagnostic, LintReport, Severity
from repro.datalog import Span


class TestCodeRegistry:
    def test_codes_are_contiguous_and_ordered(self):
        expected = [f"DL{i:03d}" for i in range(1, 25)]
        assert list(CODES) == expected

    def test_names_unique(self):
        names = [info.name for info in CODES.values()]
        assert len(names) == len(set(names))

    def test_every_entry_well_formed(self):
        for code, info in CODES.items():
            assert info.code == code
            assert isinstance(info.severity, Severity)
            assert info.summary
            assert info.name == info.name.lower()
            assert " " not in info.name  # kebab-case labels

    def test_severity_spread(self):
        by = {s: [c for c, i in CODES.items() if i.severity is s] for s in Severity}
        assert "DL001" in by[Severity.ERROR]
        assert "DL006" in by[Severity.WARNING]
        assert "DL010" in by[Severity.INFO]
        # every severity is represented
        assert all(by[s] for s in Severity)


class TestDiagnostic:
    def test_render_with_span_and_hint(self):
        d = Diagnostic(
            "DL001",
            Severity.ERROR,
            "boom",
            span=Span(3, 7),
            hint="do not boom",
        )
        text = d.render("prog.dl")
        assert text.splitlines()[0] == "prog.dl:3:7: error[DL001] unsafe-rule: boom"
        assert text.splitlines()[1] == "  hint: do not boom"

    def test_render_without_span(self):
        d = Diagnostic("DL004", Severity.WARNING, "no query")
        assert d.render("x.dl") == "x.dl: warning[DL004] no-query: no query"

    def test_name_comes_from_registry(self):
        assert Diagnostic("DL013", Severity.INFO, "m").name == "chain-regular"

    def test_to_dict_round_trips_through_json(self):
        d = Diagnostic(
            "DL002",
            Severity.ERROR,
            "m",
            predicate="p",
            rule_index=4,
            span=Span(1, 2),
            hint="h",
        )
        payload = json.loads(json.dumps(d.to_dict()))
        assert payload == {
            "code": "DL002",
            "name": "arity-mismatch",
            "severity": "error",
            "message": "m",
            "predicate": "p",
            "rule_index": 4,
            "span": [1, 2],
            "hint": "h",
        }


def _report(*severities):
    diags = tuple(
        Diagnostic(code, CODES[code].severity, f"m{i}")
        for i, code in enumerate(severities)
    )
    return LintReport(diags)


class TestLintReport:
    def test_orders_errors_first(self):
        report = _report("DL010", "DL006", "DL001", "DL013")
        assert [d.severity for d in report] == [
            Severity.ERROR,
            Severity.WARNING,
            Severity.INFO,
            Severity.INFO,
        ]

    def test_severity_buckets(self):
        report = _report("DL001", "DL006", "DL007", "DL010")
        assert len(report.errors) == 1
        assert len(report.warnings) == 2
        assert len(report.infos) == 1
        assert len(report) == 4

    def test_exit_code_contract(self):
        clean = _report()
        infos = _report("DL010")
        warns = _report("DL006")
        errs = _report("DL001")
        assert clean.exit_code() == 0 and clean.exit_code(strict=True) == 0
        assert infos.exit_code() == 0 and infos.exit_code(strict=True) == 0
        assert warns.exit_code() == 0
        assert warns.exit_code(strict=True) == 2
        assert errs.exit_code() == 2 and errs.exit_code(strict=True) == 2

    def test_summary_is_last_line_of_text(self):
        report = _report("DL001", "DL010")
        assert report.render_text().splitlines()[-1] == (
            "1 error(s), 0 warning(s), 1 info(s)"
        )

    def test_render_json(self):
        report = LintReport(
            (Diagnostic("DL006", Severity.WARNING, "m"),), source="f.dl"
        )
        payload = json.loads(report.render_json())
        assert payload["source"] == "f.dl"
        assert payload["counts"] == {"error": 0, "warning": 1, "info": 0}
        assert payload["diagnostics"][0]["code"] == "DL006"

    def test_codes_set(self):
        assert _report("DL001", "DL001", "DL010").codes() == {"DL001", "DL010"}


class TestDocsTable:
    def test_api_md_table_matches_registry(self):
        """docs/api.md's diagnostic table lists exactly the registered
        codes, with matching names and severities."""
        import pathlib
        import re

        doc = pathlib.Path(__file__).resolve().parents[2] / "docs" / "api.md"
        rows = re.findall(
            r"^\| (DL\d{3}) \| ([a-z-]+) \| (error|warning|info) \|",
            doc.read_text(),
            flags=re.M,
        )
        documented = {code: (name, sev) for code, name, sev in rows}
        assert set(documented) == set(CODES)
        for code, info in CODES.items():
            assert documented[code] == (info.name, str(info.severity)), code
