"""The abstract-interpretation framework: domains, codes, planner feed.

Three layers of coverage:

- lattice/unit tests for the sort algebra and the degree sketches
  (join/meet laws, persistence round-trips);
- one trigger *and* one non-trigger fixture per diagnostic code
  DL018–DL024;
- the planner contract: measured sketches flow into
  :class:`~repro.engine.cost.BoundCostModel` through
  ``evaluate(..., analysis=...)``, changing join orders on skewed
  inputs while answers and fact counts stay bit-identical (the oracle
  invariance every optimization in this repo must satisfy).
"""

import pytest

from repro.analysis import analyze_program
from repro.analysis.domains import (
    TOP,
    DegreeSketch,
    load_profiles,
    save_profiles,
    sort_join,
    sort_meet,
    sort_of_values,
    sort_types,
)
from repro.datalog import Database, parse
from repro.engine import EngineOptions, evaluate
from repro.engine.cost import BoundCostModel, profile_database


def db_of(**relations):
    """Database from ``name=(rows...)`` keyword relations."""
    db = Database()
    for name, rows in relations.items():
        rows = [r if isinstance(r, tuple) else (r,) for r in rows]
        arity = len(rows[0]) if rows else 1
        db.ensure(name, arity).update(rows)
    return db


def codes_of(result):
    return {d.code for d in result.report.diagnostics}


# -- the sort lattice -------------------------------------------------------


class TestSortLattice:
    def test_join_unions_constants(self):
        a = sort_of_values([1, 2])
        b = sort_of_values([3])
        assert sort_join(a, b) == sort_of_values([1, 2, 3])

    def test_top_absorbs(self):
        a = sort_of_values([1])
        assert sort_join(a, TOP) is TOP
        assert sort_meet(TOP, a) == a

    def test_meet_disjoint_constants_is_bottom(self):
        conflict = sort_meet(sort_of_values([1, 2]), sort_of_values([3]))
        assert conflict == frozenset()

    def test_overflow_widens_to_types(self):
        wide = sort_of_values(range(100))
        assert sort_types(wide) == frozenset(["int"])
        # still meets compatibly with a small same-typed sort
        assert sort_meet(wide, sort_of_values([5])) != frozenset()

    def test_type_disjoint_meet(self):
        ints = sort_of_values(range(100))
        strs = sort_of_values([f"v{i}" for i in range(100)])
        assert sort_meet(ints, strs) == frozenset()


# -- degree sketches --------------------------------------------------------


class TestDegreeSketch:
    def test_join_is_pointwise_max_and_measured_and(self):
        a = DegreeSketch.from_counts(10, [3, 1])
        b = DegreeSketch.from_counts(40, [1, 5])
        j = a.join(b)
        assert j.size == max(a.size, b.size)
        assert j.degree == tuple(
            max(x, y) for x, y in zip(a.degree, b.degree)
        )
        assert j.measured
        assert not a.join(DegreeSketch.synthetic(2)).measured

    def test_join_idempotent(self):
        a = DegreeSketch.from_counts(10, [3, 1])
        assert a.join(a) == a

    def test_synthetic_is_not_measured(self):
        s = DegreeSketch.synthetic(3)
        assert not s.measured
        assert len(s.degree) == 3

    def test_dict_round_trip(self):
        a = DegreeSketch.from_counts(10, [3, 1])
        assert DegreeSketch.from_dict(a.to_dict()) == a

    def test_profile_persistence_round_trip(self, tmp_path):
        path = str(tmp_path / "profiles.json")
        sketches = {
            "edge": DegreeSketch.from_counts(100, [4, 1]),
            "node": DegreeSketch.synthetic(1),
        }
        save_profiles(path, sketches)
        loaded = load_profiles(path)
        assert loaded == sketches

    def test_to_profile_feeds_planner(self):
        profile = DegreeSketch.from_counts(100, [4, 1]).to_profile()
        model = BoundCostModel({"edge": profile})
        assert model.profiles["edge"].size == profile.size


# -- per-code fixtures ------------------------------------------------------


class TestDL018EmptyJoin:
    def test_trigger_value_disjoint_join(self):
        program = parse(
            "a(1). a(2). c(3). c(4). p(X) :- a(X), c(X). ?- p(X)."
        )
        result = analyze_program(program)
        assert "DL018" in codes_of(result)

    def test_non_trigger_overlap(self):
        program = parse(
            "a(1). a(2). c(2). c(3). p(X) :- a(X), c(X). ?- p(X)."
        )
        assert "DL018" not in codes_of(analyze_program(program))


class TestDL019SortMismatch:
    def test_trigger_type_conflict(self):
        program = parse("a(1). b('x'). p(X) :- a(X), b(X). ?- p(X).")
        assert "DL019" in codes_of(analyze_program(program))

    def test_non_trigger_same_type(self):
        program = parse("a(1). b(1). p(X) :- a(X), b(X). ?- p(X).")
        assert "DL019" not in codes_of(analyze_program(program))


TC = """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
"""


class TestDL020ConstantPosition:
    def test_trigger_pinned_column(self):
        # a pure hub: every edge starts at 0, so tc's first position
        # is provably the constant 0 — and the hub key is maximally
        # skewed, so DL022 fires alongside
        db = db_of(edge=[(0, i) for i in range(1, 101)])
        result = analyze_program(parse(TC), db)
        assert codes_of(result) == {"DL020", "DL022"}

    def test_non_trigger_diverse_column(self):
        db = db_of(edge=[(i, i + 1) for i in range(100)])
        assert "DL020" not in codes_of(analyze_program(parse(TC), db))


class TestDL021MeasuredBlowup:
    def test_trigger_cross_product(self):
        program = parse("pair(X, Y) :- a(X), b(Y). ?- pair(X, Y).")
        db = db_of(a=list(range(200)), b=list(range(200)))
        assert "DL021" in codes_of(analyze_program(program, db))

    def test_non_trigger_small_relations(self):
        program = parse("pair(X, Y) :- a(X), b(Y). ?- pair(X, Y).")
        db = db_of(a=list(range(5)), b=list(range(5)))
        assert "DL021" not in codes_of(analyze_program(program, db))

    def test_non_trigger_without_measurements(self):
        # no EDB: sketches are synthetic, so the measured-bound code
        # must stay silent (DL017 already covers the synthetic story)
        program = parse("pair(X, Y) :- a(X), b(Y). ?- pair(X, Y).")
        assert "DL021" not in codes_of(analyze_program(program))


class TestDL022SkewedDegree:
    def test_trigger_hub_key(self):
        db = db_of(edge=[(0, i) for i in range(1, 101)])
        assert "DL022" in codes_of(analyze_program(parse(TC), db))

    def test_non_trigger_uniform_key(self):
        db = db_of(edge=[(i, i + 1) for i in range(100)])
        assert "DL022" not in codes_of(analyze_program(parse(TC), db))

    def test_non_trigger_below_size_floor(self):
        # a tiny hub is not worth narrating
        db = db_of(edge=[(0, i) for i in range(1, 5)])
        assert "DL022" not in codes_of(analyze_program(parse(TC), db))


class TestDL023BoundedRecursion:
    def test_trigger_no_frontier_variables(self):
        # the recursive rule re-derives p over the same variable: one
        # round saturates, the recursion is bounded
        program = parse(
            "s(1). e(1). p(X) :- s(X). p(X) :- p(X), e(X). ?- p(X)."
        )
        assert "DL023" in codes_of(analyze_program(program))

    def test_non_trigger_growing_recursion(self):
        # transitive closure introduces a fresh frontier variable Z:
        # genuinely unbounded, no DL023
        db = db_of(edge=[(i, i + 1) for i in range(100)])
        assert "DL023" not in codes_of(analyze_program(parse(TC), db))


class TestDL024NoBaseCase:
    def test_trigger_only_recursive_rules(self):
        program = parse("e(1). p(X) :- p(X), e(X). ?- p(X).")
        assert "DL024" in codes_of(analyze_program(program))

    def test_non_trigger_with_base_case(self):
        program = parse(
            "s(1). e(1). p(X) :- s(X). p(X) :- p(X), e(X). ?- p(X)."
        )
        assert "DL024" not in codes_of(analyze_program(program))


# -- result surface ---------------------------------------------------------


class TestAnalysisResult:
    def test_measured_sketches_from_database(self):
        db = db_of(edge=[(i, i + 1) for i in range(20)])
        result = analyze_program(parse(TC), db)
        assert result.measured
        sketches = result.sketches()
        assert sketches["edge"].measured
        assert "tc" in sketches  # propagated IDB estimate, base name

    def test_cost_profiles_keyed_by_base_names(self):
        db = db_of(edge=[(i, i + 1) for i in range(20)])
        profiles = analyze_program(parse(TC), db).cost_profiles()
        assert set(profiles) >= {"edge", "tc"}
        assert all("@" not in p for p in profiles)

    def test_unadorned_fallback_still_analyzes(self):
        # no query: adornment declines, the raw program is analyzed
        program = parse("p(X) :- a(X), c(X). a(1). c(3).")
        result = analyze_program(program)
        assert not result.adorned
        assert "DL018" in codes_of(result)

    def test_to_dict_covers_all_three_domains(self):
        db = db_of(edge=[(i, i + 1) for i in range(10)])
        data = analyze_program(parse(TC), db).to_dict()
        assert set(data["domains"]) == {
            "sorts", "cardinality", "boundedness"
        }
        assert data["measured"] is True


# -- planner integration ----------------------------------------------------


def skew_fixture():
    """A program whose best join order differs between the synthetic
    worst-case IDB profile and the measured/propagated one.

    ``small`` derives 10 rows from ``base``; ``hub`` holds 1000 rows
    with fanout 4 on its key.  Without analysis the planner treats the
    empty IDB ``small`` as huge and leads with ``hub``; with the
    propagated sketch (size ~10) leading with ``small`` is two orders
    of magnitude cheaper.
    """
    program = parse(
        """
        small(X) :- base(X).
        ans(X, Y) :- small(X), hub(X, Y).
        ?- ans(X, Y).
        """
    )
    hub = [(i, 1000 + 4 * i + j) for i in range(250) for j in range(4)]
    db = db_of(base=list(range(10)), hub=hub)
    return program, db


class TestPlannerIntegration:
    def test_pinned_plan_change_under_measured_sketches(self):
        program, db = skew_fixture()
        rule = next(r for r in program.rules if r.head.predicate == "ans")
        needed = frozenset(rule.head.args)
        remaining = tuple(range(len(rule.body)))

        default_model = BoundCostModel(profile_database(db))
        analysis = analyze_program(program, db)
        fed_model = analysis.cost_model()

        default_order = default_model.order_remaining(
            rule.body, remaining, frozenset(), needed
        )
        fed_order = fed_model.order_remaining(
            rule.body, remaining, frozenset(), needed
        )
        # pinned: the worst-case model leads with hub (membership-probe
        # the unknown small), the measured model leads with small
        assert default_order == (1, 0)
        assert fed_order == (0, 1)

        base = evaluate(program, db, EngineOptions())
        fed = evaluate(program, db, EngineOptions(), analysis=analysis)
        assert base.answers() == fed.answers()
        assert len(base.answers()) == 40
        assert dict(base.stats.fact_counts) == dict(fed.stats.fact_counts)

    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"use_kernels": False},
            {"use_columnar": False},
            {"use_indexes": False},
            {"use_scc": False},
            {"use_cost_planner": False},
        ],
        ids=lambda o: ",".join(o) or "default",
    )
    def test_analysis_never_changes_answers(self, overrides):
        # the oracle invariance: feeding analyzer profiles to the
        # planner may reorder joins but must leave answers, per-
        # predicate fact sets, and fact counts bit-identical
        for program, db in (
            skew_fixture(),
            (parse(TC), db_of(edge=[(i, i + 1) for i in range(30)])),
            (
                parse(TC),
                db_of(edge=[(0, i) for i in range(1, 60)]),
            ),
        ):
            analysis = analyze_program(program, db)
            plain = evaluate(program, db, EngineOptions(**overrides))
            fed = evaluate(
                program, db, EngineOptions(**overrides), analysis=analysis
            )
            assert plain.answers() == fed.answers()
            for pred in plain.stats.fact_counts:
                assert plain.facts(pred) == fed.facts(pred)
            assert dict(plain.stats.fact_counts) == dict(
                fed.stats.fact_counts
            )
