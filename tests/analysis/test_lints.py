"""Per-code trigger and non-trigger tests for every program lint.

Each diagnostic code DL001–DL017 gets at least one program that
produces it and one near-identical program that must not.
"""

from repro.analysis import Severity, lint_program
from repro.datalog import parse

CLEAN = """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
"""


def codes(text, edb=None):
    return lint_program(parse(text), edb=edb).codes()


def diag_for(text, code, edb=None):
    report = lint_program(parse(text), edb=edb)
    matches = [d for d in report if d.code == code]
    assert matches, f"{code} not emitted; got {sorted(report.codes())}"
    return matches[0]


class TestDL001Unsafe:
    def test_unbound_head_variable(self):
        d = diag_for("p(X, Y) :- e(X).\n?- p(X, Y).", "DL001")
        assert d.severity is Severity.ERROR
        assert "Y" in d.message
        assert d.rule_index == 0

    def test_unbound_negated_variable(self):
        assert "DL001" in codes("p(X) :- e(X), not q(X, Y).\n?- p(X).")

    def test_safe_rule_clean(self):
        assert "DL001" not in codes(CLEAN)


class TestDL002Arity:
    def test_two_arities(self):
        d = diag_for("p(X) :- e(X, Y).\np(X, Y) :- e(X, Y).\n?- p(X).", "DL002")
        assert d.predicate == "p"

    def test_consistent_arities_clean(self):
        assert "DL002" not in codes(CLEAN)


class TestDL003Stratification:
    def test_negative_cycle(self):
        text = (
            "p(X) :- e(X), not q(X).\n"
            "q(X) :- e(X), not p(X).\n"
            "?- p(X)."
        )
        assert "DL003" in codes(text)

    def test_stratified_negation_clean(self):
        text = "p(X) :- e(X), not q(X).\nq(X) :- f(X).\n?- p(X)."
        assert "DL003" not in codes(text)


class TestDL004NoQuery:
    def test_rules_without_query(self):
        d = diag_for("p(X) :- e(X).", "DL004")
        assert d.severity is Severity.WARNING

    def test_with_query_clean(self):
        assert "DL004" not in codes(CLEAN)

    def test_empty_program_clean(self):
        assert "DL004" not in codes("")


class TestDL005UndefinedQuery:
    def test_query_predicate_undefined(self):
        assert "DL005" in codes("p(X) :- e(X).\n?- q(X).")

    def test_query_predicate_in_edb_clean(self):
        assert "DL005" not in codes("p(X) :- e(X).\n?- q(X).", edb={"q", "e"})

    def test_defined_query_clean(self):
        assert "DL005" not in codes(CLEAN)


class TestDL006UndefinedBody:
    def test_undefined_with_known_edb(self):
        d = diag_for("p(X) :- ghost(X).\n?- p(X).", "DL006", edb={"e"})
        assert d.predicate == "ghost"

    def test_without_edb_knowledge_silent(self):
        # unknown names default to EDB relations when the EDB is unknown
        assert "DL006" not in codes("p(X) :- ghost(X).\n?- p(X).")

    def test_stored_predicate_clean(self):
        assert "DL006" not in codes("p(X) :- e(X).\n?- p(X).", edb={"e"})

    def test_builtins_exempt(self):
        text = "p(X) :- e(X, Y), lt(X, Y).\n?- p(X)."
        assert "DL006" not in codes(text, edb={"e"})


class TestDL007Unreachable:
    def test_rule_off_the_query(self):
        d = diag_for("p(X) :- e(X).\ndead(X) :- e(X).\n?- p(X).", "DL007")
        assert d.predicate == "dead"

    def test_all_reachable_clean(self):
        assert "DL007" not in codes(CLEAN)


class TestDL008Duplicate:
    def test_renamed_duplicate(self):
        text = "p(X) :- e(X).\np(Y) :- e(Y).\n?- p(X)."
        assert "DL008" in codes(text)

    def test_distinct_rules_clean(self):
        assert "DL008" not in codes(CLEAN)


class TestDL009RedundantLiteral:
    def test_repeated_literal(self):
        assert "DL009" in codes("p(X) :- e(X), e(X).\n?- p(X).")

    def test_distinct_literals_clean(self):
        assert "DL009" not in codes("p(X) :- e(X), f(X).\n?- p(X).")


class TestDL010ExistentialPosition:
    def test_existential_query_column(self):
        text = (
            "tc(X, Y) :- edge(X, Y).\n"
            "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
            "?- tc(X, _)."
        )
        d = diag_for(text, "DL010")
        assert d.severity is Severity.INFO
        assert "tc@nd" in d.message and "2 to 1" in d.message

    def test_all_needed_clean(self):
        assert "DL010" not in codes(CLEAN)


class TestDL011BooleanSubquery:
    def test_disconnected_component(self):
        d = diag_for("p(X) :- q(X), r(Y).\n?- p(X).", "DL011")
        assert "r(Y)" in d.message

    def test_connected_body_clean(self):
        assert "DL011" not in codes("p(X) :- q(X), r(X).\n?- p(X).")


class TestDL012CrossProduct:
    def test_product_of_needed_components(self):
        d = diag_for("p(X, Y) :- a(X), b(Y).\n?- p(X, Y).", "DL012")
        assert d.severity is Severity.WARNING

    def test_existential_component_is_not_a_product(self):
        # the disconnected component anchors an existential head
        # position only: Lemma 3.1 extracts it (DL011), no DL012
        text = "p(X, Y) :- a(X), b(Y).\n?- p(X, _)."
        report = lint_program(parse(text))
        assert "DL012" not in report.codes()
        assert "DL011" in report.codes()

    def test_connected_join_clean(self):
        assert "DL012" not in codes(CLEAN)


class TestDL013ChainRegular:
    def test_right_linear_chain(self):
        text = (
            "tc(X, Y) :- edge(X, Y).\n"
            "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
            "?- tc(1, X)."
        )
        assert "DL013" in codes(text)

    def test_self_embedding_chain_clean(self):
        text = (
            "p(X, Y) :- c(X, Y).\n"
            "p(X, Y) :- a(X, Z), p(Z, W), b(W, Y).\n"
            "?- p(1, X)."
        )
        assert "DL013" not in codes(text)

    def test_non_chain_clean(self):
        text = "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\nsg(X, X) :- person(X).\n?- sg(1, X)."
        assert "DL013" not in codes(text)


class TestDL014NegatedUndefined:
    def test_negated_ghost(self):
        text = "p(X) :- e(X), not ghost(X).\n?- p(X)."
        d = diag_for(text, "DL014", edb={"e"})
        assert d.predicate == "ghost"

    def test_without_edb_silent(self):
        assert "DL014" not in codes("p(X) :- e(X), not ghost(X).\n?- p(X).")

    def test_defined_negation_clean(self):
        text = "p(X) :- e(X), not q(X).\nq(X) :- f(X).\n?- p(X)."
        assert "DL014" not in codes(text, edb={"e", "f"})


class TestDL015FactInProgram:
    def test_inline_fact(self):
        d = diag_for("e(1, 2).\np(X) :- e(X, Y).\n?- p(X).", "DL015")
        assert d.severity is Severity.INFO

    def test_pure_rules_clean(self):
        assert "DL015" not in codes(CLEAN)


def _boolean_query_program(n_constants):
    """A zero-arity query whose rules mention *n_constants* distinct
    constants (one membership rule per constant)."""
    rules = "\n".join(
        f"hit() :- item({i})." for i in range(n_constants)
    )
    return f"{rules}\n?- hit()."


class TestDL016DictionaryOverhead:
    def test_boolean_query_over_many_constants(self):
        from repro.analysis.lints import DICTIONARY_OVERHEAD_THRESHOLD

        d = diag_for(
            _boolean_query_program(DICTIONARY_OVERHEAD_THRESHOLD + 1),
            "DL016",
        )
        assert d.severity is Severity.WARNING
        assert "--no-columnar" in (d.hint or "")

    def test_small_constant_universe_clean(self):
        from repro.analysis.lints import DICTIONARY_OVERHEAD_THRESHOLD

        assert "DL016" not in codes(
            _boolean_query_program(DICTIONARY_OVERHEAD_THRESHOLD)
        )

    def test_non_boolean_query_clean(self):
        # same constant universe, but the query returns rows the
        # encoding work amortizes over
        rules = "\n".join(f"hit(X) :- item(X, {i})." for i in range(40))
        assert "DL016" not in codes(f"{rules}\n?- hit(X).")

    def test_repeated_constants_count_once(self):
        rules = "\n".join("hit() :- item(1)." for _ in range(40))
        assert "DL016" not in codes(f"{rules}\n?- hit().")


class TestDL017BoundBlowup:
    def test_needed_cross_product_triggers(self):
        d = diag_for(
            "q(X, Y) :- a(X, Z), b(Y, W).\n?- q(X, Y).", "DL017"
        )
        assert d.severity is Severity.WARNING
        assert d.predicate == "q"

    def test_long_weak_chain_triggers(self):
        body = ", ".join(
            f"e(V{i}, V{i + 1})" for i in range(5)
        )
        assert "DL017" in codes(f"q(V0, V5) :- {body}.\n?- q(X, Y).")

    def test_transitive_closure_clean(self):
        assert "DL017" not in codes(CLEAN)

    def test_same_generation_clean(self):
        assert "DL017" not in codes(
            """
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            ?- sg(1, Y).
            """
        )

    def test_existential_atom_clean(self):
        # the junk atom's variables feed nothing: the Lemma 3.1 cut
        # prices the component at one row
        assert "DL017" not in codes(
            "q(X) :- a(X, Z), junk(U, V).\n?- q(X)."
        )

    def test_existential_component_clean(self):
        # a multi-literal existential component is retired whole by
        # the component split (DL011), never enumerated as a product
        assert "DL017" not in codes(
            "q(X) :- a(X, Z), b(U, W), c(W, V).\n?- q(X)."
        )


    def test_measured_profiles_override_synthetic(self):
        # a cross product over tiny *measured* relations is harmless:
        # the loaded EDB's profile replaces the synthetic defaults and
        # the blowup threshold scales with the largest measured size
        from repro.datalog import Database
        from repro.engine.cost import profile_database

        program = parse("q(X, Y) :- a(X, Z), b(Y, W).\n?- q(X, Y).")
        db = Database()
        db.ensure("a", 2).update([(i, i) for i in range(5)])
        db.ensure("b", 2).update([(i, i) for i in range(5)])
        profiles = profile_database(db)
        synthetic = lint_program(program)
        measured = lint_program(program, profiles=profiles)
        assert "DL017" in {d.code for d in synthetic.diagnostics}
        assert "DL017" not in {d.code for d in measured.diagnostics}

    def test_measured_profiles_catch_real_blowups(self):
        # ...while a genuinely skewed measured EDB still trips the
        # threshold relative to its own largest relation
        from repro.datalog import Database
        from repro.engine.cost import profile_database

        program = parse("q(X, Y) :- a(X, Z), b(Y, W).\n?- q(X, Y).")
        db = Database()
        db.ensure("a", 2).update([(i, i) for i in range(300)])
        db.ensure("b", 2).update([(i, i) for i in range(300)])
        profiles = profile_database(db)
        measured = lint_program(program, profiles=profiles)
        assert "DL017" in {d.code for d in measured.diagnostics}

    def test_error_program_suppresses(self):
        # opportunity lints are gated on an error-free program
        assert "DL017" not in codes(
            "q(X, Y) :- a(X, Z), b(Y, W), c(Q).\n?- q(X, Y)."
            + "\nc(A, B) :- a(A, B)."
        )


class TestReportShape:
    def test_clean_program_empty_strict_exit(self):
        report = lint_program(parse(CLEAN))
        assert report.exit_code(strict=True) == 0

    def test_error_suppresses_opportunity_lints(self):
        # unsafe rule (error) → DL010/DL011/DL013 are withheld
        report = lint_program(parse("p(X, Y) :- e(X).\n?- p(X, _)."))
        assert "DL001" in report.codes()
        assert not {"DL010", "DL011", "DL013"} & report.codes()

    def test_spans_point_into_source(self):
        report = lint_program(parse("p(X, Y) :- e(X).\n?- p(X, Y)."))
        d = [d for d in report if d.code == "DL001"][0]
        assert d.span is not None and d.span.line == 1

    def test_every_code_has_registry_entry(self):
        report = lint_program(
            parse("p(X, Y) :- e(X).\np(X) :- e(X).\n?- q(X)."), edb=set()
        )
        for d in report:
            assert d.name  # raises KeyError on unregistered codes
