"""Acceptance sweep: every shipped program is lint-clean and the
pass-contract sanitizer accepts the full optimizer pipeline on it.

These are the ISSUE acceptance gates: `repro lint --strict` exits 0
for all paper examples and workload families, and optimize(...,
validate=True) raises no InvariantViolation anywhere.
"""

import pytest

from repro.analysis import lint_program, validate_result
from repro.core.pipeline import optimize
from repro.workloads.families import all_families
from repro.workloads.paper_examples import (
    example1_program,
    example2_program,
    example5_program,
    example12_original,
    example12_transformed,
)

FAMILIES = sorted(all_families().items())

EXAMPLES = [
    ("example1", example1_program()),
    ("example2", example2_program()),
    ("example5", example5_program()),
    ("example12_original", example12_original()),
    ("example12_transformed", example12_transformed()),
]


@pytest.mark.parametrize("name,program", FAMILIES, ids=[n for n, _ in FAMILIES])
def test_family_is_strict_clean(name, program):
    report = lint_program(program)
    assert report.exit_code(strict=True) == 0, report.render_text()


@pytest.mark.parametrize("name,program", EXAMPLES, ids=[n for n, _ in EXAMPLES])
def test_paper_example_is_strict_clean(name, program):
    report = lint_program(program)
    assert report.exit_code(strict=True) == 0, report.render_text()


@pytest.mark.parametrize("name,program", FAMILIES, ids=[n for n, _ in FAMILIES])
def test_family_pipeline_validates(name, program):
    validate_result(optimize(program, validate=True))


@pytest.mark.parametrize("name,program", EXAMPLES, ids=[n for n, _ in EXAMPLES])
def test_paper_example_pipeline_validates(name, program):
    validate_result(optimize(program, validate=True))


def test_families_are_nonempty():
    assert len(FAMILIES) >= 10
