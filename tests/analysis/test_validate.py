"""Tests for the pass-contract sanitizer (Layer 2).

Each check gets a passing case (the real pipeline's output) and a
failing case (a deliberately corrupted program or a monkeypatched
pass), asserting the violation names the right pass and rule.
"""

from dataclasses import replace

import pytest

from repro.analysis import (
    InvariantViolation,
    check_adorned_program,
    check_argument_projections,
    check_compiled_program,
    check_component_partition,
    check_split_anchoring,
    validate_result,
)
from repro.core.adornment import Adornment, AdornedLiteral, adorn
from repro.core.components import split_components
from repro.core.pipeline import optimize
from repro.core.projection import push_projections
from repro.datalog import parse
from repro.datalog.ast import Atom

TC_EXISTENTIAL = parse(
    """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, _).
    """
)

EXAMPLE2_STYLE = parse(
    """
    p(X) :- q(X, Y), r(Z, W), s(W).
    q(X, Y) :- e(X, Y).
    ?- p(X).
    """
)


def adorned_tc():
    return adorn(TC_EXISTENTIAL)


class TestCheckAdornedProgram:
    def test_real_adorned_program_passes(self):
        check_adorned_program(adorned_tc(), "adorn")

    def test_real_projected_program_passes(self):
        check_adorned_program(push_projections(adorned_tc()), "push_projections")

    def test_wrong_mangled_name(self):
        program = adorned_tc()
        rule = program.rules[0]
        bad_head = replace(
            rule.head, atom=Atom("tc@nn", rule.head.atom.args)
        )
        bad = program.with_rules(
            [replace(rule, head=bad_head), *program.rules[1:]]
        )
        with pytest.raises(InvariantViolation) as e:
            check_adorned_program(bad, "adorn")
        assert e.value.rule == "name-adornment-agree"
        assert e.value.pass_name == "adorn"

    def test_claimed_projected_but_full_arity(self):
        # flipping the flag without dropping the d columns must trip
        # the arity contract of Lemma 3.2
        bad = replace(adorned_tc(), projected=True)
        with pytest.raises(InvariantViolation) as e:
            check_adorned_program(bad, "push_projections")
        assert e.value.rule == "adornment-arity"

    def test_negated_literal_with_existential_adornment(self):
        program = adorn(
            parse("p(X) :- e(X), not q(X).\nq(X) :- f(X).\n?- p(X).")
        )
        target = next(r for r in program.rules if r.negative)
        bad_neg = replace(target.negative[0], adornment=Adornment("d"))
        bad = program.with_rules(
            [
                replace(r, negative=(bad_neg,)) if r is target else r
                for r in program.rules
            ]
        )
        with pytest.raises(InvariantViolation) as e:
            check_adorned_program(bad, "adorn")
        assert e.value.rule == "negation-all-needed"

    def test_boolean_predicate_with_arity(self):
        program = adorned_tc()
        bad = replace(
            program, boolean_predicates=frozenset({"tc@nd"})
        )
        with pytest.raises(InvariantViolation) as e:
            check_adorned_program(bad, "split_components")
        assert e.value.rule == "boolean-arity"

    def test_undefined_derived_body_predicate(self):
        program = adorned_tc()
        # drop every tc@nd rule but keep the query referencing it
        bad = program.with_rules([])
        with pytest.raises(InvariantViolation) as e:
            check_adorned_program(bad, "adorn")
        assert e.value.rule == "derived-defined"

    def test_undefined_derived_tolerated_after_deletion(self):
        # the same shape is legitimate after delete_rules (a deleted
        # predicate may leave a never-firing reference behind)
        bad = adorned_tc().with_rules([])
        check_adorned_program(bad, "delete_rules")


class TestComponentChecks:
    def test_partition_on_real_program(self):
        check_component_partition(adorned_tc(), "adorn")

    def test_split_output_is_anchored(self):
        split = split_components(adorn(EXAMPLE2_STYLE))
        check_split_anchoring(split.program, "split_components")

    def test_unsplit_program_fails_anchoring(self):
        # before the Lemma 3.1 rewriting, r(Z, W), s(W) hangs off p's
        # body without touching a needed head variable
        with pytest.raises(InvariantViolation) as e:
            check_split_anchoring(adorn(EXAMPLE2_STYLE), "split_components")
        assert e.value.rule == "single-component"
        assert e.value.pass_name == "split_components"


class TestArgumentProjectionCheck:
    def test_real_projections_pass(self):
        projected = push_projections(split_components(adorned_tc()).program)
        check_argument_projections(projected, "push_projections")

    def test_unprojected_program_is_skipped(self):
        check_argument_projections(adorned_tc(), "adorn")

    def test_corrupted_projection_caught(self, monkeypatch):
        from repro.core import argument_projection as ap

        # fully-needed tc: the recursive literal tc@nn(Z, Y) shares Y
        # with the head, so its projection has a real edge to corrupt
        full = parse(
            "tc(X, Y) :- edge(X, Y).\n"
            "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
            "?- tc(X, Y)."
        )
        projected = push_projections(split_components(adorn(full)).program)
        real = ap.program_projections(projected)
        key, proj = next(
            (k, p) for k, p in sorted(real.items()) if p.edges
        )
        broken = dict(real)
        broken[key] = replace(proj, edges=frozenset())
        monkeypatch.setattr(ap, "program_projections", lambda _p: broken)
        with pytest.raises(InvariantViolation) as e:
            check_argument_projections(projected, "push_projections")
        assert e.value.rule == "hidden-link-edges"


class TestCompiledProgramCheck:
    def test_real_compilation_passes(self):
        check_compiled_program(TC_EXISTENTIAL, "final")

    def test_tampered_plan_caught(self, monkeypatch):
        from repro.engine import plan as plan_mod

        real_compile = plan_mod.compile_rule

        def tampered(rule, rule_index, sizes=None):
            compiled = real_compile(rule, rule_index, sizes)
            if len(compiled.plan) < 2:
                return compiled
            # swap two steps WITHOUT recomputing bound/free positions:
            # the binding metadata now lies about the join order
            swapped = (compiled.plan[1], compiled.plan[0], *compiled.plan[2:])
            return replace(compiled, plan=swapped)

        monkeypatch.setattr(plan_mod, "compile_rule", tampered)
        with pytest.raises(InvariantViolation) as e:
            check_compiled_program(TC_EXISTENTIAL, "final")
        assert e.value.rule in ("slot-binding", "slot-free")
        assert e.value.pass_name == "final"


class TestPipelineIntegration:
    def test_validate_true_accepts_real_pipeline(self):
        optimize(TC_EXISTENTIAL, validate=True)
        optimize(EXAMPLE2_STYLE, validate=True)

    def test_validate_result_post_hoc(self):
        validate_result(optimize(TC_EXISTENTIAL))
        validate_result(optimize(EXAMPLE2_STYLE))

    def test_broken_projection_pass_is_caught(self, monkeypatch):
        # mutation fixture: push_projections claims success without
        # dropping the existential columns
        def broken(adorned):
            return replace(adorned, projected=True)

        monkeypatch.setattr("repro.core.pipeline.push_projections", broken)
        with pytest.raises(InvariantViolation) as e:
            optimize(TC_EXISTENTIAL, validate=True)
        assert e.value.pass_name == "push_projections"
        assert e.value.rule == "adornment-arity"

    def test_broken_split_pass_is_caught(self, monkeypatch):
        from repro.core.components import ComponentSplit

        # mutation fixture: the component split does nothing but still
        # reports success — the unanchored component survives
        def broken(adorned, paper_mode=True):
            return ComponentSplit(
                program=adorned, booleans=frozenset(), rules_split=0
            )

        monkeypatch.setattr("repro.core.pipeline.split_components", broken)
        with pytest.raises(InvariantViolation) as e:
            optimize(EXAMPLE2_STYLE, validate=True)
        assert e.value.pass_name == "split_components"
        assert e.value.rule == "single-component"

    def test_without_validate_broken_pass_slips_through(self, monkeypatch):
        from repro.core.components import ComponentSplit

        def broken(adorned, paper_mode=True):
            return ComponentSplit(
                program=adorned, booleans=frozenset(), rules_split=0
            )

        monkeypatch.setattr("repro.core.pipeline.split_components", broken)
        optimize(EXAMPLE2_STYLE)  # no validation: no exception here

    def test_violation_message_names_pass_and_rule(self):
        err = InvariantViolation("push_projections", "adornment-arity", "boom")
        assert "push_projections" in str(err)
        assert "adornment-arity" in str(err)
        assert err.pass_name == "push_projections"
        assert err.rule == "adornment-arity"


class TestQueryLiteral:
    def test_query_arity_violation(self):
        program = adorned_tc()
        bad_query = AdornedLiteral(
            Atom("tc@nd", program.query.atom.args[:1]),
            program.query.adornment,
            derived=True,
        )
        bad = replace(program, query=bad_query)
        with pytest.raises(InvariantViolation) as e:
            check_adorned_program(bad, "adorn")
        assert e.value.rule == "adornment-arity"
