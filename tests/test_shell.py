"""Tests for the interactive shell (driven with string buffers)."""

import io


from repro.shell import Shell, run_shell


def run(lines):
    out = io.StringIO()
    run_shell(lines, out=out, interactive=False)
    return out.getvalue()


class TestStatements:
    def test_facts_and_rules_accumulate(self):
        output = run(
            [
                "edge(1, 2).",
                "tc(X, Y) :- edge(X, Y).",
                "?- tc(X, Y).",
            ]
        )
        assert "added 1 fact(s)" in output
        assert "added 1 rule(s)" in output
        assert "1, 2" in output and "(1 answer(s))" in output

    def test_trailing_dot_optional(self):
        output = run(["edge(1, 2)", "?- edge(X, Y)"])
        assert "(1 answer(s))" in output

    def test_recursive_query(self):
        output = run(
            [
                "edge(1, 2).",
                "edge(2, 3).",
                "tc(X, Y) :- edge(X, Y).",
                "tc(X, Y) :- edge(X, Z), tc(Z, Y).",
                "?- tc(1, Y).",
            ]
        )
        assert "2\n" in output and "3\n" in output

    def test_arity_zero_answer_prints_true(self):
        output = run(["e(1).", "some :- e(X).", "?- some."])
        assert "true" in output

    def test_unknown_predicate(self):
        output = run(["?- ghost(X)."])
        assert "unknown predicate" in output

    def test_parse_error_reported_not_fatal(self):
        output = run(["p(X :- q(X).", "e(1).", "?- e(X)."])
        assert "error:" in output
        assert "(1 answer(s))" in output

    def test_unsafe_rule_rejected_and_not_kept(self):
        output = run(["p(X, Y) :- e(X).", ".rules"])
        assert "error:" in output
        assert "(no rules)" in output

    def test_comments_and_blanks_ignored(self):
        output = run(["", "% a comment", "e(1).", "?- e(X)."])
        assert "(1 answer(s))" in output


class TestCommands:
    def test_rules_listing(self):
        output = run(["p(X) :- e(X).", ".rules"])
        assert "[0] p(X) :- e(X)." in output

    def test_facts_listing_filtered(self):
        output = run(["e(1).", "f(2).", ".facts e"])
        assert "e(1)." in output and "f(2)." not in output

    def test_stats_requires_evaluation(self):
        assert "no evaluation yet" in run([".stats"])

    def test_stats_after_query(self):
        output = run(["e(1).", "p(X) :- e(X).", "?- p(X).", ".stats"])
        assert "iters=" in output

    def test_optimize_requires_query(self):
        assert "run a query first" in run([".optimize"])

    def test_optimize_shows_pipeline(self):
        output = run(
            [
                "p(X, Y) :- e(X, Y).",
                "p(X, Y) :- e(X, Z), p(Z, Y).",
                "?- p(X, _).",
                ".optimize",
            ]
        )
        assert "adorned" in output and "final" in output

    def test_explain(self):
        output = run(
            [
                "edge(1, 2).",
                "tc(X, Y) :- edge(X, Y).",
                ".explain tc 1,2",
            ]
        )
        assert "tc(1, 2)" in output and "[rule" in output

    def test_explain_unknown_fact(self):
        output = run(["edge(1, 2).", "tc(X, Y) :- edge(X, Y).", ".explain tc 9,9"])
        assert "not derived" in output

    def test_strata(self):
        output = run(
            [
                "reach(X) :- start(X).",
                "reach(Y) :- reach(X), edge(X, Y).",
                "iso(X) :- node(X), not reach(X).",
                ".strata",
            ]
        )
        assert "stratum 0: reach" in output
        assert "stratum 1: iso" in output

    def test_clear(self):
        output = run(["e(1).", ".clear", ".facts"])
        assert "cleared" in output and "(0 fact(s))" in output

    def test_load(self, tmp_path):
        f = tmp_path / "prog.dl"
        f.write_text("edge(1, 2).\ntc(X, Y) :- edge(X, Y).\n?- tc(X, Y).\n")
        output = run([f".load {f}"])
        assert "loaded 1 rule(s), 1 fact(s)" in output
        assert "(1 answer(s))" in output

    def test_load_missing_file(self):
        assert "error:" in run([".load /nonexistent.dl"])

    def test_unknown_command(self):
        assert "unknown command" in run([".bogus"])

    def test_help(self):
        assert ".rules" in run([".help"])

    def test_quit_stops_processing(self):
        output = run([".quit", "e(1).", "?- e(X)."])
        assert "answer" not in output


class TestShellObject:
    def test_handle_returns_false_on_quit(self):
        shell = Shell(out=io.StringIO())
        assert shell.handle("e(1).") is True
        assert shell.handle(".quit") is False


class TestAnalyzeCommand:
    def test_analyze_reports_measured_domains(self):
        output = run(
            [
                "edge(1, 2).",
                "edge(2, 3).",
                "tc(X, Y) :- edge(X, Y).",
                "tc(X, Y) :- edge(X, Z), tc(Z, Y).",
                ".analyze",
            ]
        )
        assert "domains:" in output
        assert "measured" in output

    def test_analyze_flags_sort_conflicts(self):
        output = run(
            [
                "a(1).",
                "b('x').",
                "p(X) :- a(X), b(X).",
                ".analyze",
            ]
        )
        assert "DL019" in output

    def test_analyze_listed_in_help(self):
        assert ".analyze" in run([".help"])
