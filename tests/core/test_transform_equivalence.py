"""Generic transformation-equivalence checks via the shared helper.

Exercises :func:`tests.conftest.assert_query_equivalent` on every
standalone transformation whose output is a plain evaluable program —
a second, uniformly-phrased layer over the per-phase suites.
"""

from repro.core import (
    adorn,
    delete_rules,
    delete_subsumed,
    minimize_uniform,
    push_projections,
)
from repro.core.folding import fold_program
from repro.core.unfolding import unfold_nonrecursive
from repro.datalog import parse
from repro.workloads.paper_examples import (
    adorned_from_text,
    example5_adorned_text,
    example7_adorned,
    example9_adorned,
    example9_fold_spec,
)
from tests.conftest import assert_query_equivalent


def test_adorn_and_project_equivalent():
    program = parse(
        """
        q(X) :- r(X, Y), s(Y, Z).
        r(X, Y) :- e(X, Y).
        r(X, Y) :- e(X, Z), r(Z, Y).
        ?- q(X).
        """
    )
    projected = push_projections(adorn(program)).to_program()
    assert_query_equivalent(program, projected, seeds=range(3), rows=15, domain=7)


def test_delete_rules_equivalent():
    before = adorned_from_text(example5_adorned_text())
    after = delete_rules(before)
    assert_query_equivalent(
        before.to_program(), after.program.to_program(), seeds=range(3)
    )


def test_subsumption_equivalent():
    program = parse(
        """
        p(X, Y) :- e(X, Y).
        p(X, Y) :- e(X, Y), f(Y, Z).
        p(X, X) :- e(X, X).
        ?- p(X, Y).
        """
    )
    trimmed, _ = delete_subsumed(program)
    assert_query_equivalent(program, trimmed, seeds=range(3), rows=15, domain=7)


def test_minimize_uniform_equivalent():
    program = parse(
        """
        q(X) :- e(X, Y), e(X, Y2).
        q(X) :- q(X).
        ?- q(X).
        """
    )
    assert_query_equivalent(
        program, minimize_uniform(program), seeds=range(3), rows=15, domain=7
    )


def test_fold_equivalent():
    program = example9_adorned()
    ri, bis, name = example9_fold_spec()
    folded = fold_program(program, ri, bis, name)
    assert_query_equivalent(
        program.to_program(),
        folded.program.to_program(),
        seeds=range(3),
        rows=15,
        domain=7,
    )


def test_unfold_equivalent():
    before = example7_adorned()
    after = unfold_nonrecursive(delete_rules(before).program)
    assert_query_equivalent(
        before.to_program(), after.program.to_program(), seeds=range(3)
    )
