"""Tests for the connected-component / boolean rewriting (section 3.1)."""

from repro.datalog import parse
from repro.engine import EngineOptions, evaluate
from repro.core.adornment import adorn
from repro.core.components import rule_components, split_components
from repro.core.projection import push_projections
from repro.workloads.paper_examples import example2_program
from repro.workloads.edb import random_edb


class TestRuleComponents:
    def components_of(self, src):
        adorned = adorn(parse(src))
        return rule_components(adorned.rules[0])

    def test_single_component(self):
        comps = self.components_of("q(X) :- a(X, Y), b(Y, Z). ?- q(X).")
        assert len(comps) == 1

    def test_two_components(self):
        comps = self.components_of("q(X) :- a(X, Y), c(W). ?- q(X).")
        assert sorted(map(sorted, comps)) == [[0], [1]]

    def test_transitive_connection(self):
        comps = self.components_of(
            "q(X) :- a(X, Y), b(Y, Z), c(Z, W), d(U, V). ?- q(X)."
        )
        assert sorted(map(len, comps)) == [1, 3]

    def test_ground_literal_own_component(self):
        comps = self.components_of("q(X) :- a(X), c(1, 2). ?- q(X).")
        assert len(comps) == 2


class TestSplitComponents:
    def test_example2_shape(self):
        adorned = adorn(example2_program())
        split = split_components(adorned)
        assert split.rules_split == 1
        assert len(split.booleans) == 2
        texts = [str(r) for r in split.program.rules]
        # main rule references both booleans
        main = next(t for t in texts if t.startswith("p@nd"))
        for b in sorted(split.booleans):
            assert b in main
        # each boolean has a defining rule
        for b in split.booleans:
            assert any(t.startswith(b) for t in texts)

    def test_example2_boolean_bodies(self):
        adorned = adorn(example2_program())
        split = split_components(adorned)
        bodies = {
            r.head.atom.predicate: {lit.atom.predicate for lit in r.body}
            for r in split.program.rules
            if r.head.atom.predicate in split.booleans
        }
        assert {"q3", "q4@n"} in bodies.values()
        assert {"q5"} in bodies.values()

    def test_no_split_when_connected(self):
        adorned = adorn(parse("q(X) :- a(X, Y), b(Y). ?- q(X)."))
        split = split_components(adorned)
        assert split.rules_split == 0
        assert split.booleans == frozenset()
        assert str(split.program) == str(adorned)

    def test_paper_mode_frees_head_d_variable(self):
        # U anchors only through the head's d position
        adorned = adorn(example2_program())
        split = split_components(adorned, paper_mode=True)
        main = next(
            r for r in split.program.rules if r.head.atom.predicate == "p@nd"
        )
        head_second = main.head.atom.args[1]
        body_vars = {v for lit in main.body for v in lit.atom.variables()}
        assert head_second not in body_vars  # replaced by a fresh variable

    def test_safe_mode_keeps_head_variables_bound(self):
        adorned = adorn(example2_program())
        split = split_components(adorned, paper_mode=False)
        for rule in split.program.rules:
            assert rule.to_rule().is_safe()

    def test_safe_mode_splits_fully_disconnected_only(self):
        adorned = adorn(example2_program())
        split = split_components(adorned, paper_mode=False)
        # q5(W) has no head variable at all: split in both modes
        assert len(split.booleans) == 1

    def test_safe_mode_preserves_answers(self):
        program = example2_program()
        adorned = adorn(program)
        split = split_components(adorned, paper_mode=False)
        rewritten = split.program.to_program()
        for seed in range(4):
            db = random_edb(program, rows=15, domain=6, seed=seed)
            a1 = evaluate(program, db).answers()
            a2 = evaluate(
                rewritten, db, EngineOptions(cut_predicates=split.booleans)
            ).answers()
            # compare on the needed first column
            assert {t[0] for t in a1} == {t[0] for t in a2}

    def test_paper_mode_plus_projection_preserves_answers(self):
        program = example2_program()
        projected = push_projections(split_components(adorn(program)).program)
        rewritten = projected.to_program()
        rewritten.validate()
        for seed in range(4):
            db = random_edb(program, rows=15, domain=6, seed=seed)
            a1 = {t[0] for t in evaluate(program, db).answers()}
            a2 = evaluate(
                rewritten,
                db,
                EngineOptions(cut_predicates=projected.boolean_predicates),
            ).answers()
            assert a1 == {t[0] for t in a2}

    def test_boolean_names_avoid_collisions(self):
        program = parse(
            """
            bool1(X) :- e(X).
            q(X) :- a(X), bool1(Y), c(W).
            ?- q(X).
            """
        )
        split = split_components(adorn(program))
        assert "bool1" not in split.booleans  # name already taken

    def test_booleans_accumulate_across_calls(self):
        adorned = adorn(example2_program())
        once = split_components(adorned)
        twice = split_components(once.program)
        assert once.booleans <= twice.program.boolean_predicates
        assert twice.rules_split == 0  # nothing left to split
