"""Tests for the unfolding post-pass (section-6 literal transformation)."""


from repro.datalog import parse
from repro.engine import evaluate
from repro.core import adorn, optimize, push_projections
from repro.core.unfolding import unfold_nonrecursive
from repro.workloads.edb import random_edb
from repro.workloads.paper_examples import adorned_from_text


def unfolded(text, **kw):
    program = adorned_from_text(text)
    return unfold_nonrecursive(program, **kw)


class TestEligibility:
    def test_single_rule_nonrecursive_unfolds(self):
        report = unfolded(
            """
            q@n(X) :- view@nn(X, Y).
            view@nn(X, Y) :- e(X, Y).
            ?- q@n(X).
            """
        )
        assert report.unfolded == ("view@nn",)
        assert str(report.program.rules[0]) == "q@n(X) :- e(X, Y)."

    def test_two_rules_not_unfolded(self):
        report = unfolded(
            """
            q@n(X) :- view@nn(X, Y).
            view@nn(X, Y) :- e(X, Y).
            view@nn(X, Y) :- f(X, Y).
            ?- q@n(X).
            """
        )
        assert report.unfolded == ()

    def test_recursive_not_unfolded(self):
        report = unfolded(
            """
            q@n(X) :- view@nn(X, Y).
            view@nn(X, Y) :- e(X, Z), view@nn(Z, Y).
            ?- q@n(X).
            """
        )
        assert report.unfolded == ()

    def test_mutual_recursion_not_unfolded(self):
        report = unfolded(
            """
            q@n(X) :- a@nn(X, Y).
            a@nn(X, Y) :- b@nn(X, Y).
            b@nn(X, Y) :- e(X, Z), a@nn(Z, Y).
            b@nn(X, Y) :- e(X, Y).
            ?- q@n(X).
            """
        )
        assert "a@nn" not in report.unfolded

    def test_query_predicate_not_unfolded(self):
        report = unfolded(
            """
            q@n(X) :- e(X, Y).
            r@n(X) :- q@n(X).
            ?- q@n(X).
            """
        )
        assert "q@n" not in report.unfolded

    def test_negated_predicate_not_unfolded(self):
        report = unfolded(
            """
            q@n(X) :- e(X), not view@n(X).
            view@n(X) :- f(X).
            ?- q@n(X).
            """
        )
        assert report.unfolded == ()

    def test_boolean_guard_not_unfolded(self):
        program = adorned_from_text(
            """
            q@n(X) :- item(X), b1.
            b1 :- w(U, V).
            ?- q@n(X).
            """,
            booleans=["b1"],
        )
        assert unfold_nonrecursive(program).unfolded == ()

    def test_body_size_cap(self):
        text = """
            q@n(X) :- view@nn(X, Y).
            view@nn(X, Y) :- e(X, Z), f(Z, W), g(W, Y).
            ?- q@n(X).
        """
        assert unfolded(text).unfolded == ()
        assert unfolded(text, max_body=3).unfolded == ("view@nn",)


class TestSemantics:
    def test_unifier_applied_to_consumer(self):
        report = unfolded(
            """
            q@n(X) :- view@nn(X, X).
            view@nn(X, Y) :- e(X, Y).
            ?- q@n(X).
            """
        )
        assert str(report.program.rules[0]) == "q@n(X) :- e(X, X)."

    def test_constants_propagate(self):
        report = unfolded(
            """
            q@n(X) :- view@nn(X, 3).
            view@nn(X, Y) :- e(X, Y).
            ?- q@n(X).
            """
        )
        assert str(report.program.rules[0]) == "q@n(X) :- e(X, 3)."

    def test_defining_negatives_spliced(self):
        report = unfolded(
            """
            q@n(X) :- view@n(X).
            view@n(X) :- e(X), not bad(X).
            ?- q@n(X).
            """
        )
        assert str(report.program.rules[0]) == "q@n(X) :- e(X), not bad(X)."

    def test_variable_collision_freshened(self):
        report = unfolded(
            """
            q@n(Y) :- item(Y), view@nn(Y, Z).
            view@nn(X, Y) :- e(X, Y), f(Y).
            ?- q@n(Y).
            """
        )
        rule = report.program.rules[0]
        text = str(rule)
        assert "e(Y," in text and "item(Y)" in text
        rule.to_rule()  # still well-formed
        assert report.program.to_program().validate()

    def test_multiple_occurrences_all_spliced(self):
        report = unfolded(
            """
            q@nn(X, Y) :- view@nn(X, Z), view@nn(Z, Y).
            view@nn(X, Y) :- e(X, Y).
            ?- q@nn(X, Y).
            """
        )
        assert str(report.program.rules[0]) == "q@nn(X, Y) :- e(X, Z), e(Z, Y)."

    def test_answers_preserved_randomized(self):
        source = parse(
            """
            q(X, Y) :- mid(X, Z), mid(Z, Y).
            mid(X, Y) :- e(X, Y), mark(Y).
            ?- q(X, _).
            """
        )
        projected = push_projections(adorn(source))
        report = unfold_nonrecursive(projected)
        assert report.unfolded
        p1, p2 = projected.to_program(), report.program.to_program()
        for seed in range(4):
            db = random_edb(p1, rows=15, domain=7, seed=seed)
            assert evaluate(p1, db).answers() == evaluate(p2, db).answers()


class TestPipelineIntegration:
    def test_adornment_fork_removed(self):
        # q@nn survives only as a copy of e; unfolding removes the copy
        from repro.datalog import Program
        from repro.datalog.ast import Atom, Rule
        from repro.datalog.terms import Variable

        X, Y, QX, A1 = (Variable(n) for n in ("X", "Y", "QX", "_1"))
        program = Program(
            (
                Rule(Atom("q", (X, Y)), (Atom("e", (X, Y)),)),
                Rule(Atom("q", (Y, X)), (Atom("q", (X, Y)), Atom("e", (X, X)))),
            ),
            Atom("q", (QX, A1)),
        )
        result = optimize(program)
        assert "q@nn" in result.unfolded
        db = random_edb(program, rows=12, domain=6, seed=0)
        original = evaluate(program, db).stats
        optimized = result.evaluate(db).stats
        assert optimized.derivations <= original.derivations
        assert result.answers(db) == result.reference_answers(db)

    def test_unfold_disabled(self):
        program = parse(
            """
            query(X) :- reach(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
            reach(X, Y) :- edge(X, Y).
            ?- query(X).
            """
        )
        plain = optimize(program, unfold=False)
        assert plain.unfolded == ()
        folded = optimize(program)
        assert folded.unfolded
        db = random_edb(program, rows=15, domain=7, seed=1)
        assert plain.answers(db) == folded.answers(db)
