"""Tests for argument projections and summaries (section 5)."""

import pytest

from repro.datalog import TransformError
from repro.core.argument_projection import (
    ArgumentProjection,
    identity_projection,
    program_projections,
    query_rooted_summaries,
    summary_closure,
)
from repro.workloads.paper_examples import (
    adorned_from_text,
    example5_adorned_text,
    example10_adorned,
)


def ap(left, right, *edges):
    return ArgumentProjection(left, right, frozenset(edges))


class TestCompose:
    def test_relational_case(self):
        # q0 -0~0- p, p -0~1- r  =>  q0 -0~1- r
        first = ap("q", "p", (0, 0))
        second = ap("p", "r", (0, 1))
        assert first.compose(second) == ap("q", "r", (0, 1))

    def test_disconnect(self):
        first = ap("q", "p", (0, 0))
        second = ap("p", "r", (1, 0))
        assert first.compose(second) == ap("q", "r")

    def test_zigzag_connectivity(self):
        # q{0,1} both touch p0; p0 touches r0: both q nodes reach r0
        first = ap("q", "p", (0, 0), (1, 0))
        second = ap("p", "r", (0, 0))
        assert first.compose(second) == ap("q", "r", (0, 0), (1, 0))

    def test_zigzag_through_left(self):
        # q0-p0, q0-p1, p1-r0: q0 reaches r0 through two mid nodes
        first = ap("q", "p", (0, 0), (0, 1))
        second = ap("p", "r", (1, 0))
        assert (0, 0) in first.compose(second).edges

    def test_mismatched_middle_rejected(self):
        with pytest.raises(TransformError):
            ap("q", "p").compose(ap("r", "s"))

    def test_identity_neutral(self):
        ident = identity_projection("p", 2)
        proj = ap("q", "p", (0, 1))
        assert proj.compose(ident) == proj

    def test_swap_composition(self):
        swap = ap("p", "p", (0, 1), (1, 0))
        assert swap.compose(swap) == identity_projection("p", 2)

    def test_maps_position(self):
        proj = ap("q", "p", (0, 0), (0, 1), (1, 0))
        assert proj.maps_position(0) == {0, 1}
        assert proj.maps_position(2) == frozenset()


class TestProgramProjections:
    def test_example5(self):
        program = adorned_from_text(example5_adorned_text())
        projections = program_projections(program)
        # derived occurrences: a@nn in rules 0 and 2
        assert set(projections) == {(0, 0), (2, 0)}
        assert projections[(0, 0)] == ap("a@nd", "a@nn", (0, 0))
        assert projections[(2, 0)] == ap("a@nn", "a@nn", (0, 0))

    def test_requires_projected(self):
        from repro.core.adornment import adorn
        from repro.workloads.paper_examples import example5_program

        with pytest.raises(TransformError):
            program_projections(adorn(example5_program()))

    def test_constants_make_no_edges(self):
        program = adorned_from_text(
            "q@nn(X, Y) :- r@nn(X, 1). r@nn(X, Y) :- e(X, Y). ?- q@nn(X, Y)."
        )
        proj = program_projections(program)[(0, 0)]
        assert proj.edges == {(0, 0)}


class TestSummaryClosure:
    def test_algorithm51_saturation(self):
        s2 = summary_closure([ap("a", "b", (0, 0)), ap("b", "c", (0, 0))])
        assert ap("a", "c", (0, 0)) in s2

    def test_swap_cycle_saturates(self):
        swap = ap("p", "p", (0, 1), (1, 0))
        s2 = summary_closure([swap])
        assert identity_projection("p", 2) in s2
        assert len([s for s in s2 if s.left == s.right == "p"]) == 2

    def test_cap_enforced(self):
        with pytest.raises(TransformError):
            # enough structure to exceed a tiny cap
            summary_closure(
                [
                    ap("a", "a", (0, 1), (1, 2)),
                    ap("a", "a", (2, 0)),
                    ap("a", "a", (1, 0), (2, 1)),
                ],
                max_summaries=2,
            )


class TestQueryRootedSummaries:
    def test_example5_fixpoint(self):
        program = adorned_from_text(example5_adorned_text())
        summaries = query_rooted_summaries(program)
        assert summaries.by_predicate["a@nn"] == {ap("a@nd", "a@nn", (0, 0))}
        assert summaries.by_occurrence[(2, 0)] == {ap("a@nd", "a@nn", (0, 0))}

    def test_identity_seed(self):
        program = adorned_from_text(example5_adorned_text())
        summaries = query_rooted_summaries(program)
        assert identity_projection("a@nd", 1) in summaries.by_predicate["a@nd"]

    def test_example10_swap_and_identity(self):
        program = example10_adorned()
        summaries = query_rooted_summaries(program)
        expected = {
            ap("p0@nn", "p@nn", (0, 0), (1, 1)),
            ap("p0@nn", "p@nn", (0, 1), (1, 0)),
        }
        assert summaries.by_predicate["p@nn"] == expected
        # occurrence (4,0): the body of q@nn :- p@nn
        assert summaries.by_occurrence[(4, 0)] == expected

    def test_unreachable_predicate_empty(self):
        program = adorned_from_text(
            """
            q@n(X) :- e(X, Y).
            orphan@n(X) :- r@n(X).
            r@n(X) :- f(X).
            ?- q@n(X).
            """
        )
        summaries = query_rooted_summaries(program)
        assert "r@n" not in summaries.by_predicate
        assert summaries.by_occurrence[(1, 0)] == frozenset()
