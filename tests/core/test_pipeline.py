"""Tests for the end-to-end optimization pipeline."""

import pytest

from repro.datalog import parse
from repro.engine import evaluate
from repro.core.pipeline import optimize
from repro.workloads.edb import random_edb
from repro.workloads.paper_examples import (
    example1_program,
    example2_program,
    example5_program,
)


def check_equivalent(result, seeds=range(5), rows=25, domain=10):
    for seed in seeds:
        db = random_edb(result.original, rows=rows, domain=domain, seed=seed)
        assert result.answers(db) == result.reference_answers(db), seed


class TestPipelinePaperPrograms:
    def test_example1_to_nonrecursive(self):
        result = optimize(example1_program())
        # projection + deletion: the final program is non-recursive
        from repro.datalog.analysis import recursive_predicates

        assert recursive_predicates(result.program) == frozenset()
        check_equivalent(result)

    def test_example2_boolean_cut(self):
        result = optimize(example2_program())
        assert result.cut_predicates  # booleans survive to the final program
        check_equivalent(result)

    def test_example6_single_rule(self):
        result = optimize(example5_program())
        assert len(result.program.rules) == 1
        assert str(result.program.rules[0]) == "a@nd(X) :- p(X, Y)."
        check_equivalent(result)


class TestPipelineOptions:
    def test_no_deletion(self):
        result = optimize(example1_program(), deletion=None)
        assert result.deletion is None
        check_equivalent(result)

    def test_no_projection_skips_deletion(self):
        result = optimize(example1_program(), project=False, split=False)
        assert result.projected is None and result.deletion is None
        # unprojected adorned program is still equivalent
        check_equivalent(result)

    def test_safe_split_without_projection(self):
        result = optimize(
            example2_program(), paper_mode=False, project=False, deletion=None
        )
        result.program.validate()
        check_equivalent(result)

    def test_lemma51_method(self):
        result = optimize(example5_program(), deletion="lemma51")
        check_equivalent(result)

    def test_without_chase_or_sagiv(self):
        result = optimize(
            example5_program(), use_chase=False, use_sagiv=False, unit_rules=False
        )
        check_equivalent(result)

    def test_describe_mentions_all_phases(self):
        text = optimize(example2_program()).describe()
        for keyword in ("original", "adorned", "components", "projections", "final"):
            assert keyword in text


class TestPipelineGeneralPrograms:
    @pytest.mark.parametrize(
        "src",
        [
            # same generation, existential query
            """
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            ?- sg(X, _).
            """,
            # two recursion levels
            """
            q(X) :- r(X, Y).
            r(X, Y) :- s(X, Z), r(Z, Y).
            r(X, Y) :- s(X, Y).
            s(X, Y) :- e(X, Y).
            ?- q(X).
            """,
            # nonlinear recursion
            """
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), t(Z, Y).
            ?- t(X, _).
            """,
            # query with constants
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            ?- tc(1, _).
            """,
            # disconnected guard component
            """
            q(X) :- item(X), ok(Y, Z).
            ok(Y, Z) :- w(Y), v(Z).
            ?- q(X).
            """,
        ],
        ids=["same-gen", "two-level", "nonlinear", "constant-query", "guard"],
    )
    def test_equivalence_on_random_edbs(self, src):
        result = optimize(parse(src))
        check_equivalent(result, seeds=range(4), rows=20, domain=8)

    def test_never_more_rules_than_pre_deletion(self):
        # deletion never leaves more rules than it started with
        for src_fn in (example1_program, example2_program, example5_program):
            result = optimize(src_fn())
            pre = len(result.projected.rules) + (
                len(result.unit_rules.added) if result.unit_rules else 0
            )
            assert len(result.program) <= pre

    def test_optimized_never_slower_in_facts(self):
        program = example1_program()
        result = optimize(program)
        db = random_edb(program, rows=60, domain=25, seed=2)
        orig = evaluate(program, db).stats
        opt = result.evaluate(db).stats
        assert opt.facts_derived <= orig.facts_derived
