"""Tests for Sagiv's uniform-equivalence machinery (Examples 4 and 5)."""

from repro.datalog import parse
from repro.engine import evaluate
from repro.core.adornment import adorn
from repro.core.projection import push_projections
from repro.core.uniform_equivalence import (
    literal_deletable_uniform,
    minimize_uniform,
    rule_deletable_uniform,
    uniformly_contains,
    uniformly_equivalent,
)
from repro.workloads.edb import uniform_instance
from repro.workloads.paper_examples import (
    adorned_from_text,
    example1_program,
    example5_adorned_text,
)


def projected_tc():
    """Example 3's program (unary right-linear TC)."""
    return push_projections(adorn(example1_program())).to_program()


class TestRuleDeletion:
    def test_example4_recursive_rule_deletable(self):
        program = projected_tc()
        # rule 1: a@nd(X) :- p(X, Z), a@nd(Z).
        assert rule_deletable_uniform(program, 1)

    def test_example4_exit_rule_not_deletable(self):
        program = projected_tc()
        assert not rule_deletable_uniform(program, 2)

    def test_example3a_variant_blocks_deletion(self):
        # paper: "such a deletion would not be possible if the following
        # rule replaced the third rule": exit over a different relation
        program = parse(
            """
            query(X) :- a(X).
            a(X) :- p(X, Z), a(Z).
            a(X) :- p1(X, Z).
            ?- query(X).
            """
        )
        assert not rule_deletable_uniform(program, 1)

    def test_example5_nothing_deletable(self):
        program = adorned_from_text(example5_adorned_text()).to_program()
        for ri in range(len(program.rules)):
            assert not rule_deletable_uniform(program, ri), ri

    def test_trivial_circular_rule(self):
        program = parse("a(X) :- a(X). a(X) :- e(X). ?- a(X).")
        assert rule_deletable_uniform(program, 0)


class TestLiteralDeletion:
    def test_duplicate_literal_deletable(self):
        program = parse("q(X) :- e(X, Y), e(X, Y2). ?- q(X).")
        assert literal_deletable_uniform(program, 0, 1)

    def test_join_literal_not_deletable(self):
        program = parse("q(X) :- e(X, Y), f(Y). ?- q(X).")
        assert not literal_deletable_uniform(program, 0, 1)

    def test_safety_preserving_only(self):
        program = parse("q(X) :- e(X). ?- q(X).")
        assert not literal_deletable_uniform(program, 0, 0)

    def test_subsumed_literal(self):
        # f(Y, Y) subsumed? no — but e twice with swap isn't; check a
        # genuinely implied literal via an idb rule
        program = parse(
            """
            big(X) :- e(X, Y), any(X).
            any(X) :- e(X, Z).
            ?- big(X).
            """
        )
        assert literal_deletable_uniform(program, 0, 1)


class TestContainmentAndEquivalence:
    def test_self_equivalence(self):
        program = projected_tc()
        assert uniformly_equivalent(program, program)

    def test_example4_minimized_program_equivalent(self):
        program = projected_tc()
        smaller = program.without_rule(1)
        assert uniformly_equivalent(program, smaller)

    def test_example5_left_vs_right_linear_not_uniformly_equivalent(self):
        left = parse(
            """
            a(X, Y) :- a(X, Z), p(Z, Y).
            a(X, Y) :- p(X, Y).
            """
        )
        right = parse(
            """
            a(X, Y) :- p(X, Z), a(Z, Y).
            a(X, Y) :- p(X, Y).
            """
        )
        # Same least model from EDB-only inputs, but uniform inputs
        # (with a-facts present) distinguish them... actually both
        # compute tc closure over p plus closure of given a-facts
        # through p. Left extends a-facts on the right; right extends
        # on the left. They differ.
        assert not uniformly_equivalent(left, right)

    def test_containment_direction(self):
        program = projected_tc()
        extra = parse(
            """
            query(X) :- a(X).
            a(X) :- p(X, Z), a(Z).
            a(X) :- p(X, Y).
            a(X) :- bonus(X).
            ?- query(X).
            """
        )
        # careful: predicates differ (query@n vs query); rebuild matching
        base = parse(
            """
            query(X) :- a(X).
            a(X) :- p(X, Z), a(Z).
            a(X) :- p(X, Y).
            ?- query(X).
            """
        )
        assert uniformly_contains(extra, base)
        assert not uniformly_contains(base, extra)

    def test_uniform_equivalence_implies_same_fixpoints_on_samples(self):
        program = projected_tc()
        smaller = program.without_rule(1)
        for seed in range(3):
            db = uniform_instance(program, rows=6, domain=5, seed=seed)
            r1 = evaluate(program.with_query(None), db)
            r2 = evaluate(smaller.with_query(None), db)
            for pred in program.idb_predicates():
                assert r1.facts(pred) == r2.facts(pred)


class TestMinimize:
    def test_example4_minimization(self):
        program = projected_tc()
        minimized = minimize_uniform(program, drop_literals=False)
        assert len(minimized) == 2
        # the recursive rule is the one that disappears
        assert all("a@nd(Z)" not in str(r) for r in minimized.rules)

    def test_minimize_drops_duplicate_literals(self):
        program = parse("q(X) :- e(X, Y), e(X, Y2). ?- q(X).")
        minimized = minimize_uniform(program)
        assert len(minimized.rules[0].body) == 1

    def test_minimized_program_equivalent_on_samples(self):
        program = projected_tc()
        minimized = minimize_uniform(program)
        for seed in range(3):
            db = uniform_instance(program, rows=6, domain=5, seed=seed)
            assert (
                evaluate(program, db).answers()
                == evaluate(minimized, db).answers()
            )
