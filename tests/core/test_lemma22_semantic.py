"""Empirical validation of Lemma 2.2: the adornment algorithm marks an
argument ``d`` only if it is *semantically* existential.

The paper's semantic definition (section 2): the argument position of
``Y`` in an occurrence ``p(X̄, Y)`` in rule ``r1`` is existential iff
adding ``p'(X̄, Y') :- p(X̄, Y)`` (with ``Y'`` ranging freely) and
replacing the occurrence — and any ``Y`` in the head — by the primed
version preserves query equivalence.

Over a finite database the free ``Y'`` ranges over the active domain,
so the definition is testable: we materialize it with an auxiliary
``dom`` relation holding the active domain and check query equivalence
on batches of random databases.  Detecting existential arguments
exactly is undecidable (Lemma 2.1); these tests check the *soundness*
direction the lemma states, on every ``d`` the algorithm produces for a
zoo of programs.
"""

import pytest

from repro.datalog import Atom, Database, Program, Rule, Variable, parse
from repro.engine import evaluate
from repro.core.adornment import AdornedProgram, adorn
from repro.workloads.edb import random_edb


def transformed_by_definition(
    program: Program, rule_index: int, body_index: int, position: int
) -> Program:
    """Build the paper's transformed program for one occurrence/position.

    ``p(..., Y, ...)`` at *position* in body literal *body_index* of
    rule *rule_index* is replaced by ``p_prime``; the new rule
    ``p_prime(..., Y', ...) :- p(..., Y, ...), dom(Y')`` lets the primed
    position take any active-domain value.
    """
    rule = program.rules[rule_index]
    literal = rule.body[body_index]
    term_y = literal.args[position]
    assert isinstance(term_y, Variable)
    y_prime = Variable(term_y.name + "_prime")

    p_prime = literal.predicate + "_prime"
    prime_args = tuple(
        y_prime if i == position else a for i, a in enumerate(literal.args)
    )
    prime_def = Rule(
        Atom(p_prime, prime_args),
        (literal, Atom("dom", (y_prime,))),
    )

    new_body = tuple(
        Atom(p_prime, prime_args) if i == body_index else a
        for i, a in enumerate(rule.body)
    )
    new_head = rule.head.substitute({term_y: y_prime})
    new_rule = Rule(new_head, new_body)

    rules = list(program.rules)
    rules[rule_index] = new_rule
    rules.append(prime_def)
    return Program(tuple(rules), program.query)


def dom_augmented(db: Database) -> Database:
    out = db.copy()
    rel = out.ensure("dom", 1)
    rel.update((v,) for v in db.active_domain())
    return out


def projected_answers(program: Program, adorned: AdornedProgram, db: Database):
    """Answers projected onto the query's needed positions — the
    paper's notion of the answer for a query form ``q^a`` (existential
    positions are not part of the requested bindings)."""
    needed = set(adorned.query.adornment.needed_positions)
    keep = []
    seen = set()
    var_index = 0
    for pos, arg in enumerate(program.query.args):
        name = getattr(arg, "name", None)
        if name is None or name in seen:
            continue
        seen.add(name)
        if pos in needed:
            keep.append(var_index)
        var_index += 1
    raw = evaluate(program, db).answers()
    return frozenset(tuple(row[i] for i in keep) for row in raw)


def check_all_d_positions(source: str, seeds=range(3), rows=15, domain=6):
    """For every ``d`` the adornment algorithm assigns to a *derived or
    base* body occurrence, check the semantic definition holds."""
    program = parse(source)
    adorned = adorn(program)
    # map adorned rules back to original rules by index order of
    # (base predicate, rule shape); adorn() emits one adorned rule per
    # (adorned head, original rule) pair, so re-derive the original by
    # stripping adornments.
    from repro.core.adornment import split_adorned

    checked = 0
    for arule in adorned.rules:
        base_head = split_adorned(arule.head.atom.predicate)[0]
        # find the original rule with this head and matching body bases
        candidates = [
            (ri, r)
            for ri, r in enumerate(program.rules)
            if r.head.predicate == base_head
            and len(r.body) == len(arule.body)
            and all(
                split_adorned(al.atom.predicate)[0] == b.predicate
                for al, b in zip(arule.body, r.body)
            )
        ]
        assert candidates, f"no original rule for {arule}"
        ri, orig = candidates[0]
        for bi, alit in enumerate(arule.body):
            for pos in alit.adornment.existential_positions:
                if not isinstance(orig.body[bi].args[pos], Variable):
                    continue
                transformed = transformed_by_definition(program, ri, bi, pos)
                for seed in seeds:
                    db = dom_augmented(
                        random_edb(program, rows=rows, domain=domain, seed=seed)
                    )
                    a1 = projected_answers(program, adorned, db)
                    a2 = projected_answers(transformed, adorned, db)
                    assert a1 == a2, (
                        f"position {pos} of {orig.body[bi]} in rule {ri} "
                        f"is not semantically existential (seed {seed})"
                    )
                checked += 1
    return checked


PROGRAMS = {
    "tc-sources": """
        query(X) :- a(X, Y).
        a(X, Y) :- p(X, Z), a(Z, Y).
        a(X, Y) :- p(X, Y).
        ?- query(X).
    """,
    "guard": """
        q(X) :- item(X, Y), w(U, V), mark(V).
        ?- q(X).
    """,
    "left-linear": """
        a(X, Y) :- a(X, Z), p(Z, Y).
        a(X, Y) :- p(X, Y).
        ?- a(X, _).
    """,
    "multi-d": """
        q(X) :- r(X, Y, Z).
        r(X, Y, Z) :- e(X, Y), f(X, Z).
        ?- q(X).
    """,
    "head-d-chain": """
        q(X, U) :- a(X, U).
        a(X, U) :- e(X, U).
        ?- q(X, _).
    """,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_every_d_is_semantically_existential(name):
    checked = check_all_d_positions(PROGRAMS[name])
    assert checked >= 1, "test vacuous: no d positions produced"


def test_needed_argument_fails_the_definition():
    """Sanity for the oracle itself: a genuinely *needed* argument does
    not satisfy the semantic definition."""
    program = parse(
        """
        query(X) :- a(X, Y), mark(Y).
        a(X, Y) :- p(X, Y).
        ?- query(X).
        """
    )
    transformed = transformed_by_definition(program, 0, 0, 1)  # Y of a(X, Y)
    # deterministic witness: a's Y value (2) never matches mark (3),
    # but the freed Y' ranges over the domain and does
    db = dom_augmented(Database.from_dict({"p": [(1, 2)], "mark": [(3,)]}))
    a1 = evaluate(program, db).answers()
    a2 = evaluate(transformed, db).answers()
    assert a1 == frozenset()
    assert a2 == {(1,)}, "oracle failed to distinguish a needed argument"
