"""Tests for unit rules and the covers relation (section 5)."""

import pytest

from repro.datalog import TransformError
from repro.core.adornment import Adornment, adorn
from repro.core.unit_rules import (
    add_covering_unit_rules,
    canonical_rule_key,
    covering_unit_rule,
    is_unit_rule,
)
from repro.workloads.paper_examples import (
    adorned_from_text,
    example5_adorned_text,
    example5_program,
    example7_adorned,
)


class TestIsUnitRule:
    def test_positive(self):
        program = adorned_from_text("a@nd(X) :- a@nn(X, Y). a@nn(X, Y) :- e(X, Y). ?- a@nd(X).")
        assert is_unit_rule(program.rules[0])

    def test_base_body_not_unit(self):
        program = adorned_from_text("a@nd(X) :- e(X, Y). ?- a@nd(X).")
        assert not is_unit_rule(program.rules[0])

    def test_two_literals_not_unit(self):
        program = example7_adorned()
        assert not is_unit_rule(program.rules[1])


class TestCoveringUnitRule:
    def test_construction(self):
        unit = covering_unit_rule("a@nd", Adornment("nd"), "a@nn", Adornment("nn"))
        assert str(unit) == "a@nd(V1) :- a@nn(V1, V2)."

    def test_requires_covering(self):
        with pytest.raises(TransformError):
            covering_unit_rule("a@nn", Adornment("nn"), "a@nd", Adornment("nd"))

    def test_multi_position(self):
        unit = covering_unit_rule(
            "p@ndd", Adornment("ndd"), "p@ndn", Adornment("ndn")
        )
        assert str(unit) == "p@ndd(V1) :- p@ndn(V1, V3)."


class TestAddCoveringUnitRules:
    def test_example5_gets_the_rule(self):
        program = adorned_from_text(example5_adorned_text())
        report = add_covering_unit_rules(program)
        assert len(report.added) == 1
        assert str(report.added[0]) == "a@nd(V1) :- a@nn(V1, V2)."

    def test_existing_unit_rule_not_duplicated(self):
        program = example7_adorned()  # already has p@nd :- p@nn
        report = add_covering_unit_rules(program)
        assert report.added == ()

    def test_requires_projected(self):
        adorned = adorn(example5_program())
        with pytest.raises(TransformError):
            add_covering_unit_rules(adorned)

    def test_only_query(self):
        program = adorned_from_text(
            """
            q@nd(X) :- r@nd(X).
            r@nd(X) :- r@nn(X, Y), s(Y).
            r@nn(X, Y) :- e(X, Y).
            q@nn(X, Y) :- r@nn(X, Y).
            ?- q@nd(X).
            """
        )
        report = add_covering_unit_rules(program, only_query=True)
        assert all(r.head.atom.predicate == "q@nd" for r in report.added)

    def test_no_pairs_no_change(self):
        program = adorned_from_text("a@nd(X) :- e(X, Y). ?- a@nd(X).")
        report = add_covering_unit_rules(program)
        assert report.added == ()
        assert report.program is program


class TestCanonicalKey:
    def test_renaming_invariance(self):
        p1 = adorned_from_text("a@nd(X) :- a@nn(X, Y). a@nn(U, V) :- e(U, V). ?- a@nd(X).")
        p2 = adorned_from_text("a@nd(Q) :- a@nn(Q, R). a@nn(U, V) :- e(U, V). ?- a@nd(X).")
        assert canonical_rule_key(p1.rules[0]) == canonical_rule_key(p2.rules[0])

    def test_structure_sensitivity(self):
        p1 = adorned_from_text("a@nn(X, Y) :- e(X, Y). ?- a@nn(X, Y).")
        p2 = adorned_from_text("a@nn(X, Y) :- e(Y, X). ?- a@nn(X, Y).")
        assert canonical_rule_key(p1.rules[0]) != canonical_rule_key(p2.rules[0])
