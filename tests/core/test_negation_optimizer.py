"""Optimizer behaviour on programs with (stratified) negation — the
section-6 extension, handled conservatively.

Policy under test:

- adornment marks every argument of a negated literal needed (all-n);
- projection still pushes through the *positive* existential structure;
- component splitting carries a negated literal with the component that
  binds its variables;
- the uniform-(query-)equivalence machinery refuses (non-monotonic);
- the full pipeline still runs (skipping phase 3) and preserves
  answers.
"""

import pytest

from repro.datalog import TransformError, parse
from repro.engine import EngineOptions, evaluate
from repro.core import (
    adorn,
    delete_rules,
    optimize,
    push_projections,
    rule_deletable_uniform,
    split_components,
    theta_subsumes,
)
from repro.workloads.edb import random_edb


NEG_PROGRAM = parse(
    """
    answer(X) :- reach(X, Y), not banned(X).
    reach(X, Y) :- edge(X, Z), reach(Z, Y).
    reach(X, Y) :- flag(X, Y).
    ?- answer(X).
    """
)


class TestAdornmentWithNegation:
    def test_negated_literal_all_needed(self):
        adorned = adorn(NEG_PROGRAM)
        rule = adorned.rules[0]
        assert len(rule.negative) == 1
        assert str(rule.negative[0].adornment) == "n"

    def test_negated_variable_blocks_existential(self):
        # Y occurs in a negated literal: it is needed everywhere
        program = parse(
            """
            q(X) :- r(X, Y), not bad(Y).
            r(X, Y) :- e(X, Y).
            ?- q(X).
            """
        )
        adorned = adorn(program)
        assert adorned.rules[0].body[0].atom.predicate == "r@nn"

    def test_negated_derived_predicate_adorned_all_n(self):
        program = parse(
            """
            q(X) :- n(X), not d(X, X).
            d(X, Y) :- e(X, Y).
            ?- q(X).
            """
        )
        adorned = adorn(program)
        assert adorned.rules[0].negative[0].atom.predicate == "d@nn"

    def test_positive_projection_still_happens(self):
        projected = push_projections(adorn(NEG_PROGRAM))
        arities = projected.to_program().arities()
        assert arities["reach@nd"] == 1  # Y projected out of the recursion


class TestComponentsWithNegation:
    def test_negative_travels_with_its_component(self):
        program = parse(
            """
            q(X) :- item(X), w(U, V), not bad(V).
            ?- q(X).
            """
        )
        split = split_components(adorn(program))
        boolean_rule = next(
            r
            for r in split.program.rules
            if r.head.atom.predicate in split.booleans
        )
        assert [a.atom.predicate for a in boolean_rule.negative] == ["bad"]
        main = next(
            r for r in split.program.rules if r.head.atom.predicate == "q@n"
        )
        assert main.negative == ()

    def test_negation_connects_components(self):
        # `not bad(Y, V)` shares variables with both groups: they must
        # stay together (extracting either would unbind the negation)
        program = parse(
            """
            q(X) :- item(X, Y), w(U, V), not bad(Y, V).
            ?- q(X).
            """
        )
        split = split_components(adorn(program))
        assert split.booleans == frozenset()

    def test_split_preserves_answers(self):
        program = parse(
            """
            q(X) :- item(X), w(U, V), not bad(V).
            ?- q(X).
            """
        )
        split = split_components(adorn(program), paper_mode=False)
        rewritten = split.program.to_program()
        for seed in range(3):
            db = random_edb(program, rows=12, domain=6, seed=seed)
            a1 = evaluate(program, db).answers()
            a2 = evaluate(
                rewritten, db, EngineOptions(cut_predicates=split.booleans)
            ).answers()
            assert a1 == a2


class TestDeletionRefusal:
    def test_delete_rules_refuses(self):
        projected = push_projections(adorn(NEG_PROGRAM))
        with pytest.raises(TransformError):
            delete_rules(projected)

    def test_sagiv_refuses(self):
        with pytest.raises(TransformError):
            rule_deletable_uniform(NEG_PROGRAM, 1)


class TestPipelineWithNegation:
    def test_pipeline_skips_deletion_and_preserves_answers(self):
        result = optimize(NEG_PROGRAM)
        assert result.deletion is None
        for seed in range(4):
            db = random_edb(NEG_PROGRAM, rows=20, domain=8, seed=seed)
            assert result.answers(db) == result.reference_answers(db)

    def test_pipeline_still_projects(self):
        result = optimize(NEG_PROGRAM)
        arities = result.program.arities()
        assert arities.get("reach@nd") == 1

    def test_guarded_negation_program(self):
        program = parse(
            """
            ok(X) :- item(X), witness(U, V), not broken(U).
            witness(U, V) :- link(U, V).
            witness(U, V) :- link(U, W), witness(W, V).
            ?- ok(X).
            """
        )
        result = optimize(program)
        for seed in range(3):
            db = random_edb(program, rows=15, domain=7, seed=seed)
            assert result.answers(db) == result.reference_answers(db)


class TestSubsumptionWithNegation:
    def test_extra_negation_is_subsumed(self):
        from repro.datalog import parse_rule

        weaker = parse_rule("p(X) :- e(X), not a(X), not b(X).")
        stronger = parse_rule("p(X) :- e(X), not a(X).")
        assert theta_subsumes(stronger, weaker)
        assert not theta_subsumes(weaker, stronger)

    def test_negative_literal_not_matched_positively(self):
        from repro.datalog import parse_rule

        r1 = parse_rule("p(X) :- e(X), not a(X).")
        r2 = parse_rule("p(X) :- e(X), a(X).")
        assert not theta_subsumes(r1, r2)
        assert not theta_subsumes(r2, r1)
