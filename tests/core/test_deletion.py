"""Tests for rule deletion (sections 3.3 and 5): Lemma 5.1, Lemma 5.3,
the uniform-query-equivalence chase, and the cascade clean-ups."""

import pytest

from repro.datalog import TransformError
from repro.engine import evaluate
from repro.core.adornment import adorn
from repro.core.deletion import (
    cascade,
    chase_deletable,
    delete_rules,
    lemma51_deletable,
    lemma53_deletable,
)
from repro.workloads.edb import random_edb
from repro.workloads.paper_examples import (
    adorned_from_text,
    example5_adorned_text,
    example6_optimized_text,
    example7_adorned,
    example7_reduced_text,
    example8_adorned,
    example8_empty_adorned,
    example9_adorned,
    example10_adorned,
)


def normalize(text):
    return sorted(
        line.strip() for line in str(text).strip().splitlines() if line.strip()
    )


def assert_same_answers(adorned1, adorned2, seeds=range(4), rows=20, domain=8):
    p1, p2 = adorned1.to_program(), adorned2.to_program()
    for seed in seeds:
        db = random_edb(p1, rows=rows, domain=domain, seed=seed)
        assert evaluate(p1, db).answers() == evaluate(p2, db).answers(), seed


class TestLemma51:
    def test_example7_rule5_via_unit_rule(self):
        assert lemma51_deletable(example7_adorned(), 5) is not None

    def test_example7_rule6_via_trivial_identity(self):
        assert lemma51_deletable(example7_adorned(), 6) is not None

    def test_example7_exit_rules_not_deletable(self):
        program = example7_adorned()
        assert lemma51_deletable(program, 2) is None  # p@nd :- b1
        assert lemma51_deletable(program, 4) is None  # p@nn :- b1

    def test_example10_needs_lemma53(self):
        assert lemma51_deletable(example10_adorned(), 4) is None

    def test_unit_rule_cannot_justify_itself(self):
        # only the unit rule itself reaches a@nn: deleting it must not
        # be justified by itself
        program = adorned_from_text(
            """
            a@nd(X) :- a@nn(X, Y).
            a@nd(X) :- p(X, Y).
            a@nn(X, Y) :- p(X, Y).
            ?- a@nd(X).
            """
        )
        assert lemma51_deletable(program, 0) is None

    def test_requires_projected(self):
        from repro.workloads.paper_examples import example5_program

        with pytest.raises(TransformError):
            lemma51_deletable(adorn(example5_program()), 0)


class TestLemma53:
    def test_example10_rule4(self):
        assert lemma53_deletable(example10_adorned(), 4) is not None

    def test_example9_blind_without_fold(self):
        program = example9_adorned()
        for ri in range(len(program.rules)):
            assert lemma53_deletable(program, ri) is None

    def test_subsumes_lemma51_on_example7(self):
        program = example7_adorned()
        for ri in (5, 6):
            assert lemma53_deletable(program, ri) is not None


class TestChase:
    def test_example6_recursive_rule(self):
        program = adorned_from_text(example5_adorned_text())
        assert chase_deletable(program, 2) is not None

    def test_example6_needed_rules_kept(self):
        program = adorned_from_text(example5_adorned_text())
        assert chase_deletable(program, 0) is None
        assert chase_deletable(program, 1) is None

    def test_example9_without_fold(self):
        # the chase sees what summaries cannot (paper section 6)
        assert chase_deletable(example9_adorned(), 3) is not None

    def test_fact_rules_not_considered(self):
        program = adorned_from_text(
            """
            q@n(X) :- e(X, Y).
            ?- q@n(X).
            """
        )
        assert chase_deletable(program, 0) is None


class TestCascade:
    def test_undefined_predicate(self):
        program = adorned_from_text(
            """
            q@n(X) :- ghost@n(X).
            q@n(X) :- e(X).
            ?- q@n(X).
            """
        )
        report = cascade(program)
        assert len(report.program) == 1
        assert "unproductive" in report.deleted[0].reason

    def test_no_exit_rule(self):
        program = adorned_from_text(
            """
            q@n(X) :- r@n(X).
            q@n(X) :- e(X).
            r@n(X) :- r@n(X).
            ?- q@n(X).
            """
        )
        report = cascade(program)
        assert len(report.program) == 1

    def test_unreachable(self):
        program = adorned_from_text(
            """
            q@n(X) :- e(X).
            orphan@n(X) :- f(X).
            ?- q@n(X).
            """
        )
        report = cascade(program)
        assert len(report.program) == 1
        assert "unreachable" in report.deleted[0].reason

    def test_clean_program_untouched(self):
        program = adorned_from_text(example5_adorned_text())
        report = cascade(program)
        assert report.deleted == ()
        assert report.program is not None and len(report.program) == 4


class TestDriver:
    def test_example6_full_sequence(self):
        program = adorned_from_text(example5_adorned_text())
        report = delete_rules(program, use_sagiv=False)
        assert normalize(report.program) == normalize(example6_optimized_text())
        assert_same_answers(program, report.program)

    def test_example7_summary_only(self):
        program = example7_adorned()
        report = delete_rules(
            program, method="lemma51", use_chase=False, use_sagiv=False
        )
        assert normalize(report.program) == normalize(example7_reduced_text())
        assert_same_answers(program, report.program)

    def test_example7_chase_goes_further(self):
        program = example7_adorned()
        report = delete_rules(program, method="lemma51", use_sagiv=False)
        # the redundant p@nd :- b1 falls to the chase
        assert len(report.program) < 3
        assert_same_answers(program, report.program)

    def test_example8_chain(self):
        program = example8_adorned()
        report = delete_rules(
            program, method="lemma51", use_chase=False, use_sagiv=False
        )
        reasons = [d.reason for d in report.deleted]
        assert any("lemma5.1" in r for r in reasons)
        assert any("unproductive" in r for r in reasons)
        assert any("unreachable" in r for r in reasons)
        assert_same_answers(program, report.program)

    def test_example8_empty_detected(self):
        report = delete_rules(example8_empty_adorned(), use_sagiv=False, use_chase=False)
        assert len(report.program) == 0

    def test_example10_driver(self):
        program = example10_adorned()
        report = delete_rules(
            program, method="lemma53", use_chase=False, use_sagiv=False
        )
        assert report.count >= 2
        assert_same_answers(program, report.program)

    def test_lemma51_method_weaker_on_example10(self):
        program = example10_adorned()
        r51 = delete_rules(program, method="lemma51", use_chase=False, use_sagiv=False)
        r53 = delete_rules(program, method="lemma53", use_chase=False, use_sagiv=False)
        assert len(r53.program) <= len(r51.program)

    def test_unknown_method_rejected(self):
        with pytest.raises(TransformError):
            delete_rules(example7_adorned(), method="bogus")

    def test_deletion_always_equivalent(self):
        for make in (
            example7_adorned,
            example8_adorned,
            example9_adorned,
            example10_adorned,
        ):
            program = make()
            report = delete_rules(program)
            assert_same_answers(program, report.program, seeds=range(3))
