"""Tests for optimistic derivations and Theorem 5.2 (section 5)."""

import pytest

from repro.datalog import Database, TransformError, parse
from repro.core.optimistic import (
    WILDCARD,
    optimistic_answer,
    optimistic_fixpoint,
    theorem52_deletable,
)


class TestOptimisticFixpoint:
    def test_single_known_literal_fires_rule(self):
        program = parse("h(X) :- a(X), b(X). ?- h(X).")
        db = Database.from_dict({"a": [(1,)]})
        facts = optimistic_fixpoint(program, db)
        # b(1) is merely assumed, yet h(1) is optimistically derived
        assert (1,) in facts["h"]

    def test_unbound_head_variable_becomes_wildcard(self):
        program = parse("h(X, Y) :- a(X), b(Y). ?- h(X, Y).")
        db = Database.from_dict({"a": [(1,)]})
        facts = optimistic_fixpoint(program, db)
        assert (1, WILDCARD) in facts["h"]

    def test_wildcard_matches_constant_pattern(self):
        program = parse(
            """
            mid(X, Y) :- a(X), b(Y).
            out(Z) :- mid(7, Z).
            ?- out(Z).
            """
        )
        db = Database.from_dict({"a": [(1,)]})
        facts = optimistic_fixpoint(program, db)
        # mid(1, ★) does not match mid(7, Z); but mid(★, ★) from b-side
        # would. With only a known, mid(1, ★) is the only mid fact.
        assert ("out" not in facts) or all(f == (WILDCARD,) for f in facts["out"])

    def test_wildcard_unifies_with_repeated_variable(self):
        program = parse(
            """
            mid(X, Y) :- a(X), b(Y).
            diag(X) :- mid(X, X).
            ?- diag(X).
            """
        )
        db = Database.from_dict({"a": [(1,)]})
        facts = optimistic_fixpoint(program, db)
        # mid(1, ★) includes mid(1, 1): diag(1) must appear
        assert (1,) in facts["diag"]

    def test_chain_propagation(self):
        program = parse(
            """
            p(X) :- e(X, Y), p(Y).
            p(X) :- final(X).
            ?- p(X).
            """
        )
        db = Database.from_dict({"e": [(1, 2)]})
        facts = optimistic_fixpoint(program, db)
        assert (1,) in facts["p"]  # fires optimistically from e alone

    def test_termination_on_recursion(self):
        program = parse(
            """
            p(X, Y) :- p(Y, X).
            p(X, Y) :- e(X, Y).
            ?- p(X, Y).
            """
        )
        db = Database.from_dict({"e": [(1, 2)]})
        facts = optimistic_fixpoint(program, db)
        assert (2, 1) in facts["p"]

    def test_cap(self):
        program = parse("p(X, Y) :- e(X, Z), p(Z, Y). p(X, Y) :- e(X, Y). ?- p(X, Y).")
        db = Database.from_dict({"e": [(i, i + 1) for i in range(30)]})
        with pytest.raises(TransformError):
            optimistic_fixpoint(program, db, max_facts=10)


class TestOptimisticAnswer:
    def test_selection_applied(self):
        program = parse("h(X) :- a(X), b(X). ?- h(1).")
        db = Database.from_dict({"a": [(1,), (2,)]})
        answers = optimistic_answer(program, db)
        assert (1,) in answers and (2,) not in answers

    def test_requires_query(self):
        program = parse("h(X) :- a(X).")
        with pytest.raises(TransformError):
            optimistic_answer(program, Database())


class TestTheorem52:
    def test_accepts_truly_redundant_rule(self):
        # h has two identical rules; optimistically they derive the same
        program = parse(
            """
            h(X) :- a(X).
            h(X) :- a(X).
            ?- h(X).
            """
        )
        assert theorem52_deletable(program, 0)

    def test_rejects_needed_rule(self):
        program = parse(
            """
            h(X) :- a(X).
            h(X) :- b(X).
            ?- h(X).
            """
        )
        assert not theorem52_deletable(program, 0)

    def test_conservative_on_example6(self):
        # documented: the wildcard abstraction is too coarse for the
        # left-linear TC deletion the chase handles (module docstring)
        from repro.workloads.paper_examples import (
            adorned_from_text,
            example5_adorned_text,
        )

        program = adorned_from_text(example5_adorned_text()).to_program()
        assert not theorem52_deletable(program, 2)

    def test_explicit_idb2_subset(self):
        program = parse(
            """
            h(X) :- a(X).
            h(X) :- a(X).
            h(X) :- c(X).
            ?- h(X).
            """
        )
        assert theorem52_deletable(program, 0, idb2_indexes=frozenset({1, 2}))
        assert not theorem52_deletable(program, 0, idb2_indexes=frozenset({2}))

    def test_candidate_rule_must_be_excluded_from_idb2(self):
        program = parse("h(X) :- a(X). h(X) :- a(X). ?- h(X).")
        with pytest.raises(TransformError):
            theorem52_deletable(program, 0, idb2_indexes=frozenset({0}))

    def test_fact_rule_not_deletable(self):
        program = parse("h(1). h(X) :- a(X). ?- h(X).")
        assert not theorem52_deletable(program, 0)
