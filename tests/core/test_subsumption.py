"""Tests for θ-subsumption (the section-6 direction)."""

from repro.datalog import parse, parse_rule
from repro.engine import evaluate
from repro.core.subsumption import delete_subsumed, subsumed_by_some, theta_subsumes
from repro.core.uniform_equivalence import uniformly_equivalent
from repro.workloads.edb import random_edb


class TestThetaSubsumes:
    def test_instance_subsumed(self):
        general = parse_rule("p(X, Y) :- e(X, Y).")
        special = parse_rule("p(X, X) :- e(X, X).")
        assert theta_subsumes(general, special)
        assert not theta_subsumes(special, general)

    def test_shorter_body_subsumes(self):
        short = parse_rule("p(X) :- e(X, Y).")
        long = parse_rule("p(X) :- e(X, Y), f(Y, Z).")
        assert theta_subsumes(short, long)
        assert not theta_subsumes(long, short)

    def test_constant_specialization(self):
        general = parse_rule("p(X) :- e(X, Y).")
        special = parse_rule("p(X) :- e(X, 3).")
        assert theta_subsumes(general, special)
        assert not theta_subsumes(special, general)

    def test_variants_subsume_each_other(self):
        a = parse_rule("p(X, Y) :- e(X, Z), f(Z, Y).")
        b = parse_rule("p(A, B) :- e(A, C), f(C, B).")
        assert theta_subsumes(a, b) and theta_subsumes(b, a)

    def test_different_heads(self):
        a = parse_rule("p(X) :- e(X).")
        b = parse_rule("q(X) :- e(X).")
        assert not theta_subsumes(a, b)

    def test_repeated_variable_blocks_generalization(self):
        # p(X) :- e(X, X) requires the target's args identified
        special = parse_rule("p(X) :- e(X, X).")
        general = parse_rule("p(X) :- e(X, Y).")
        assert theta_subsumes(general, special)
        assert not theta_subsumes(special, general)

    def test_permuted_bodies(self):
        a = parse_rule("p(X) :- e(X, Y), f(Y).")
        b = parse_rule("p(X) :- f(Y), e(X, Y).")
        assert theta_subsumes(a, b) and theta_subsumes(b, a)

    def test_multiple_match_candidates_backtracking(self):
        subsumer = parse_rule("p(X) :- e(X, Y), e(Y, Z).")
        target = parse_rule("p(X) :- e(X, X), e(X, W), e(W, V).")
        assert theta_subsumes(subsumer, target)

    def test_shared_name_no_capture(self):
        # same variable names in both rules must not leak
        a = parse_rule("p(X) :- e(X, Y).")
        b = parse_rule("p(Y) :- e(Y, X), f(X).")
        assert theta_subsumes(a, b)


class TestDeleteSubsumed:
    def test_example9_style_redundancy(self):
        # rule 1 subsumes rule 2 (extra literal on the subsumed side)
        program = parse(
            """
            p(X) :- e(X, Y).
            p(X) :- e(X, Y), g(Y, W).
            ?- p(X).
            """
        )
        trimmed, deleted = delete_subsumed(program)
        assert len(trimmed) == 1
        assert len(deleted) == 1
        assert str(deleted[0][1]) == "p(X) :- e(X, Y)."

    def test_variant_pair_keeps_one(self):
        program = parse(
            """
            p(X) :- e(X, Y).
            p(A) :- e(A, B).
            ?- p(X).
            """
        )
        trimmed, deleted = delete_subsumed(program)
        assert len(trimmed) == 1 and len(deleted) == 1

    def test_no_false_positives(self):
        program = parse(
            """
            p(X) :- e(X, Y).
            p(X) :- f(X, Y).
            p(X) :- e(X, Y), mark(X).
            ?- p(X).
            """
        )
        # third rule subsumed by the first; second survives
        trimmed, deleted = delete_subsumed(program)
        assert len(trimmed) == 2

    def test_preserves_uniform_equivalence(self):
        program = parse(
            """
            p(X, Y) :- e(X, Y).
            p(X, Y) :- e(X, Y), e(Y, Z).
            p(X, X) :- e(X, X).
            ?- p(X, Y).
            """
        )
        trimmed, deleted = delete_subsumed(program)
        assert deleted
        assert uniformly_equivalent(program, trimmed)

    def test_differential_on_random_dbs(self):
        program = parse(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            tc(X, Y) :- e(X, Y), aux(X).
            ?- tc(X, Y).
            """
        )
        trimmed, deleted = delete_subsumed(program)
        assert len(deleted) == 1
        for seed in range(4):
            db = random_edb(program, rows=15, domain=8, seed=seed)
            assert evaluate(program, db).answers() == evaluate(trimmed, db).answers()

    def test_subsumed_by_some(self):
        rules = parse(
            """
            p(X) :- e(X, Y).
            p(X) :- e(X, 1).
            """
        ).rules
        assert subsumed_by_some(rules[1], [rules[0]]) is rules[0]
        assert subsumed_by_some(rules[0], [rules[1]]) is None
