"""Tests for projection pushing (section 3.2, Lemma 3.2)."""

import pytest

from repro.datalog import Database, TransformError, parse
from repro.engine import evaluate
from repro.core.adornment import adorn
from repro.core.projection import project_literal, push_projections
from repro.workloads.edb import random_edb
from repro.workloads.paper_examples import (
    example1_program,
    example3_expected_text,
)


def normalize(text: str) -> list[str]:
    return [line.strip() for line in text.strip().splitlines() if line.strip()]


class TestProjectLiteral:
    def test_drops_d_positions(self):
        adorned = adorn(example1_program())
        lit = adorned.rules[0].body[0]  # a@nd(X, Y)
        projected = project_literal(lit)
        assert projected.atom.arity == 1
        assert str(projected.atom) == "a@nd(X)"

    def test_base_literal_untouched(self):
        adorned = adorn(example1_program())
        base = adorned.rules[1].body[0]  # p(X, Z)
        assert project_literal(base) is base

    def test_all_needed_untouched(self):
        adorned = adorn(parse("q(X) :- a(X). a(X) :- e(X, Y). ?- q(X)."))
        lit = adorned.rules[0].body[0]
        assert project_literal(lit).atom.arity == 1

    def test_double_projection_rejected(self):
        adorned = adorn(example1_program())
        lit = project_literal(adorned.rules[0].body[0])
        with pytest.raises(TransformError):
            project_literal(lit)


class TestPushProjections:
    def test_example3_verbatim(self):
        projected = push_projections(adorn(example1_program()))
        assert normalize(str(projected)) == normalize(example3_expected_text())

    def test_marks_projected(self):
        projected = push_projections(adorn(example1_program()))
        assert projected.projected

    def test_reapplication_rejected(self):
        projected = push_projections(adorn(example1_program()))
        with pytest.raises(TransformError):
            push_projections(projected)

    def test_output_is_safe(self):
        projected = push_projections(adorn(example1_program()))
        projected.to_program().validate()

    def test_recursive_arity_reduced(self):
        projected = push_projections(adorn(example1_program()))
        arities = projected.to_program().arities()
        assert arities["a@nd"] == 1  # was 2

    def test_lemma32_answers_preserved(self):
        program = example1_program()
        projected = push_projections(adorn(program)).to_program()
        for seed in range(5):
            db = random_edb(program, rows=30, domain=12, seed=seed)
            assert (
                evaluate(program, db).answers()
                == evaluate(projected, db).answers()
            )

    def test_fewer_facts_produced(self):
        program = example1_program()
        projected = push_projections(adorn(program)).to_program()
        db = random_edb(program, rows=60, domain=20, seed=1)
        orig = evaluate(program, db).stats
        opt = evaluate(projected, db).stats
        assert opt.facts_derived < orig.facts_derived
        assert opt.duplicates <= orig.duplicates

    def test_query_atom_projected(self):
        p = parse("a(X, Y) :- e(X, Y). ?- a(X, _).")
        projected = push_projections(adorn(p))
        assert projected.query.atom.arity == 1

    def test_multi_d_positions(self):
        p = parse(
            """
            q(X) :- a(X, Y, Z).
            a(X, Y, Z) :- e(X, Y), f(X, Z).
            ?- q(X).
            """
        )
        projected = push_projections(adorn(p))
        arities = projected.to_program().arities()
        assert arities["a@ndd"] == 1

    def test_head_d_variable_occurring_twice_in_body(self):
        # Y is at a d head position but joins two body literals: the
        # body keeps the join, only the head column is dropped.
        p = parse(
            """
            q(X) :- a(X, Y).
            a(X, Y) :- e(X, Y), f(Y).
            ?- q(X).
            """
        )
        projected = push_projections(adorn(p))
        rule = next(
            r for r in projected.rules if r.head.atom.predicate == "a@nd"
        )
        assert rule.head.atom.arity == 1
        assert len(rule.body) == 2
        program = projected.to_program()
        program.validate()
        db = Database.from_dict({"e": [(1, 2), (3, 4)], "f": [(2,)]})
        assert evaluate(program, db).answers() == {(1,)}
