"""Tests for the adornment algorithm (section 2)."""

import pytest

from repro.datalog import TransformError, ValidationError, parse
from repro.core.adornment import (
    Adornment,
    adorn,
    adorned_name,
    query_adornment,
    split_adorned,
)
from repro.workloads.paper_examples import example1_adorned_text, example1_program


def normalize(text: str) -> list[str]:
    return [line.strip() for line in text.strip().splitlines() if line.strip()]


class TestAdornment:
    def test_validation(self):
        with pytest.raises(ValidationError):
            Adornment("nx")

    def test_positions(self):
        a = Adornment("ndn")
        assert a.needed_positions == (0, 2)
        assert a.existential_positions == (1,)

    def test_all_needed(self):
        assert Adornment.all_needed(3) == Adornment("nnn")
        assert Adornment("nn").is_all_needed
        assert not Adornment("nd").is_all_needed

    def test_covers(self):
        assert Adornment("nn").covers(Adornment("nd"))
        assert Adornment("nn").covers(Adornment("nn"))
        assert not Adornment("nd").covers(Adornment("nn"))
        assert not Adornment("nn").covers(Adornment("n"))

    def test_iteration_and_index(self):
        a = Adornment("nd")
        assert list(a) == ["n", "d"]
        assert a[1] == "d"
        assert len(a) == 2


class TestNameMangling:
    def test_roundtrip(self):
        name = adorned_name("a", Adornment("nd"))
        assert name == "a@nd"
        assert split_adorned(name) == ("a", Adornment("nd"))

    def test_plain_name(self):
        assert split_adorned("edge") == ("edge", None)

    def test_bf_suffix_not_confused(self):
        # magic-sets names use @bf; not an n/d adornment
        assert split_adorned("a@bf") == ("a@bf", None)


class TestQueryAdornment:
    def test_named_variables_needed(self):
        p = parse("q(X, Y) :- e(X, Y). ?- q(X, Y).")
        assert query_adornment(p.query) == Adornment("nn")

    def test_anonymous_existential(self):
        p = parse("q(X, Y) :- e(X, Y). ?- q(X, _).")
        assert query_adornment(p.query) == Adornment("nd")

    def test_constants_needed(self):
        p = parse("q(X, Y) :- e(X, Y). ?- q(1, _).")
        assert query_adornment(p.query) == Adornment("nd")


class TestAdornAlgorithm:
    def test_example1_verbatim(self):
        adorned = adorn(example1_program())
        assert normalize(str(adorned)) == normalize(example1_adorned_text())

    def test_shared_variable_stays_needed(self):
        p = parse("q(X) :- e(X, Y), f(Y). ?- q(X).")
        adorned = adorn(p)
        rule = adorned.rules[0]
        assert str(rule.body[0].adornment) == "nn"  # Y occurs twice
        assert str(rule.body[1].adornment) == "n"

    def test_variable_at_d_head_position_only(self):
        # U appears once in the body and only at a d position of the
        # head: the algorithm marks it existential.
        p = parse("q(X, U) :- e(X, U). ?- q(X, _).")
        adorned = adorn(p)
        assert str(adorned.rules[0].body[0].adornment) == "nd"
        # Same shape through a derived predicate: a gets the nd form.
        p2 = parse(
            """
            q(X, U) :- a(X, U).
            a(X, U) :- e(X, U).
            ?- q(X, _).
            """
        )
        adorned2 = adorn(p2)
        body_pred = adorned2.rules[0].body[0].atom.predicate
        assert body_pred == "a@nd"

    def test_variable_at_both_n_and_d_head_positions_is_needed(self):
        p = parse(
            """
            q(X, X2) :- a(X, X2).
            a(X, Y) :- e(X, Y).
            ?- q(X, _).
            """
        )
        # trick: same var at n and d head positions
        p3 = parse(
            """
            q(X, X) :- a(X).
            a(X) :- e(X, Y).
            ?- q(X, _).
            """
        )
        adorned = adorn(p3)
        # X occurs at n position 0 → needed in body
        assert adorned.rules[0].body[0].atom.predicate == "a@n"

    def test_multiple_adorned_versions(self):
        p = parse(
            """
            q(X) :- a(X, Y), a(Y, Z), mark(Z).
            a(X, Y) :- e(X, Y).
            ?- q(X).
            """
        )
        adorned = adorn(p)
        heads = {r.head.atom.predicate for r in adorned.rules}
        # first occurrence a^nn (Y shared), second a^nn (both shared)
        assert "a@nn" in heads

    def test_distinct_versions_generated(self):
        p = parse(
            """
            q(X) :- a(X, Y).
            r(X) :- a(X, Y), c(Y).
            q(X) :- r(X).
            a(X, Y) :- e(X, Y).
            ?- q(X).
            """
        )
        adorned = adorn(p)
        heads = {r.head.atom.predicate for r in adorned.rules}
        assert {"a@nd", "a@nn"} <= heads  # both query forms of a

    def test_base_predicates_not_renamed(self):
        adorned = adorn(example1_program())
        base = [
            lit
            for r in adorned.rules
            for lit in r.body
            if not lit.derived
        ]
        assert all(lit.atom.predicate == "p" for lit in base)

    def test_constants_adorned_needed(self):
        p = parse("q(X) :- a(X, 1). a(X, Y) :- e(X, Y). ?- q(X).")
        adorned = adorn(p)
        assert adorned.rules[0].body[0].atom.predicate == "a@nn"

    def test_requires_query(self):
        p = parse("a(X, Y) :- e(X, Y).")
        with pytest.raises(TransformError):
            adorn(p)

    def test_query_predicate_must_be_derived(self):
        p = parse("a(X, Y) :- e(X, Y). ?- ghost(X).")
        with pytest.raises(TransformError):
            adorn(p)

    def test_explicit_query_adornment(self):
        p = parse("a(X, Y) :- e(X, Y). ?- a(X, Y).")
        adorned = adorn(p, query_ad=Adornment("nd"))
        assert adorned.query.atom.predicate == "a@nd"

    def test_adornment_arity_mismatch(self):
        p = parse("a(X, Y) :- e(X, Y). ?- a(X, Y).")
        with pytest.raises(TransformError):
            adorn(p, query_ad=Adornment("n"))

    def test_termination_on_cyclic_versions(self):
        # swap recursion generates finitely many adorned versions
        p = parse(
            """
            a(X, Y) :- a(Y, X).
            a(X, Y) :- e(X, Y).
            ?- a(X, _).
            """
        )
        adorned = adorn(p)
        heads = {r.head.atom.predicate for r in adorned.rules}
        assert heads == {"a@nd", "a@dn"}

    def test_to_program_is_valid(self):
        adorned = adorn(example1_program())
        adorned.to_program().validate()
