"""The capability matrix of the three deletion engines.

The paper's story is precisely about which sufficient condition catches
which redundancy: Sagiv's uniform-equivalence chase (Example 4), the
summary tests (Lemmas 5.1/5.3, Examples 7/8/10), and uniform *query*
equivalence (Example 6).  This module pins the whole matrix down as
executable facts, one program per row, so any change to a test's power
— stronger or weaker — fails loudly.
"""

import pytest

from repro.core import (
    chase_deletable,
    lemma51_deletable,
    lemma53_deletable,
    rule_deletable_uniform,
    theorem52_deletable,
)
from repro.workloads.paper_examples import adorned_from_text


def capabilities(program, rule_index):
    """Which engines would delete rule *rule_index*?"""
    plain = program.to_program()
    return {
        "sagiv": bool(rule_deletable_uniform(plain, rule_index)),
        "lemma51": lemma51_deletable(program, rule_index) is not None,
        "lemma53": lemma53_deletable(program, rule_index) is not None,
        "chase": chase_deletable(program, rule_index) is not None,
        "thm52": theorem52_deletable(plain, rule_index),
    }


# One row per phenomenon.  `rule` is the redundant rule under test;
# `expected` maps engine -> can-delete.
MATRIX = {
    "right-linear-recursion (Example 4)": (
        """
        query@n(X) :- a@nd(X).
        a@nd(X) :- p(X, Z), a@nd(Z).
        a@nd(X) :- p(X, Z).
        ?- query@n(X).
        """,
        1,
        {"sagiv": True, "lemma51": False, "lemma53": False, "chase": False, "thm52": False},
    ),
    "left-linear-recursion (Example 6)": (
        """
        a@nd(X) :- a@nn(X, Z), p(Z, Y).
        a@nd(X) :- p(X, Y).
        a@nn(X, Y) :- a@nn(X, Z), p(Z, Y).
        a@nn(X, Y) :- p(X, Y).
        ?- a@nd(X).
        """,
        2,
        {"sagiv": False, "lemma51": False, "lemma53": False, "chase": True, "thm52": False},
    ),
    "unit-rule summary (Example 7 shape)": (
        """
        p@nd(X) :- p@nn(X, Y).
        p@nn(X, Y) :- b1(X, Y).
        p1@nn(X, Z) :- p@nn(X, U), b2(U, W, Z).
        p@nd(X) :- p1@nn(X, Z), b4(Z, Y).
        ?- p@nd(X).
        """,
        2,
        {"sagiv": False, "lemma51": True, "lemma53": True, "chase": True, "thm52": False},
    ),
    "swap pair needs Lemma 5.3 (Example 10)": (
        """
        p0@nn(X, Y) :- p@nn(X, Y).
        p0@nn(X, Y) :- p@nn(Y, X).
        p@nn(X, Y) :- q@nn(X, Y).
        p@nn(X, Y) :- q@nn(Y, X).
        q@nn(X, Y) :- p@nn(X, Y).
        p@nn(X, Y) :- b(X, Y).
        ?- p0@nn(X, Y).
        """,
        4,
        # the stronger semantic tests also see it; the pinned fact is
        # the 5.1-vs-5.3 split the paper demonstrates
        {"sagiv": False, "lemma51": False, "lemma53": True, "chase": True, "thm52": True},
    ),
    "subsumed contribution (Example 9)": (
        """
        q0@n(X) :- p@nn(X, Y), g3(Y, Z, U).
        q0@n(X) :- g1(X, Y).
        p@nn(X, Y) :- g2(X, Y).
        p@nn(X, Z) :- p@nn(X, Y), g3(Y, Z, U), g4(U, W).
        ?- q0@n(X).
        """,
        3,
        {"sagiv": False, "lemma51": False, "lemma53": False, "chase": True, "thm52": False},
    ),
    "duplicate rule (everyone wins)": (
        """
        q@n(X) :- e(X, Y).
        q@n(X) :- e(X, Y).
        ?- q@n(X).
        """,
        1,
        {"sagiv": True, "lemma51": False, "lemma53": False, "chase": True, "thm52": True},
    ),
    "needed exit rule (nobody may win)": (
        """
        query@n(X) :- a@nd(X).
        a@nd(X) :- p(X, Z), a@nd(Z).
        a@nd(X) :- p(X, Z).
        ?- query@n(X).
        """,
        2,
        {"sagiv": False, "lemma51": False, "lemma53": False, "chase": False, "thm52": False},
    ),
}


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_capability_matrix(name):
    source, rule_index, expected = MATRIX[name]
    program = adorned_from_text(source)
    got = capabilities(program, rule_index)
    assert got == expected, f"{name}: {got} != {expected}"


def test_chase_strictly_stronger_than_nothing_on_matrix():
    """Sanity: across the matrix, every row some engine claims is
    deletable really is — differential check."""
    from repro.engine import evaluate
    from repro.workloads.edb import random_edb

    for name, (source, rule_index, expected) in MATRIX.items():
        if not any(expected.values()):
            continue
        program = adorned_from_text(source)
        trimmed = program.without_rules([rule_index])
        p1, p2 = program.to_program(), trimmed.to_program()
        for seed in range(3):
            db = random_edb(p1, rows=15, domain=7, seed=seed)
            assert (
                evaluate(p1, db).answers() == evaluate(p2, db).answers()
            ), (name, seed)
