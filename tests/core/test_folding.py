"""Tests for the Example-11 folding transformation."""

import pytest

from repro.datalog import TransformError
from repro.engine import evaluate
from repro.core.deletion import delete_rules, lemma51_deletable
from repro.core.folding import define_view, fold_program
from repro.workloads.edb import random_edb
from repro.workloads.paper_examples import (
    adorned_from_text,
    example9_adorned,
    example9_fold_spec,
)


def assert_same_answers(a1, a2, seeds=range(4)):
    p1, p2 = a1.to_program(), a2.to_program()
    for seed in seeds:
        db = random_edb(p1, rows=20, domain=8, seed=seed)
        assert evaluate(p1, db).answers() == evaluate(p2, db).answers(), seed


class TestDefineView:
    def test_view_exports_all_variables(self):
        program = example9_adorned()
        view, head = define_view(program, 0, (0, 1), "qq")
        assert str(view) == "qq(X, Y, Z, U) :- p@nn(X, Y), g3(Y, Z, U)."
        assert head.atom.predicate == "qq"

    def test_empty_selection_rejected(self):
        with pytest.raises(TransformError):
            define_view(example9_adorned(), 0, (), "qq")


class TestFoldProgram:
    def test_example11_fold(self):
        program = example9_adorned()
        ri, bis, name = example9_fold_spec()
        result = fold_program(program, ri, bis, name)
        texts = {str(r) for r in result.program.rules}
        assert "q0@n(X) :- qq(X, Y, Z, U)." in texts
        assert "qq(X, Y, Z, U) :- p@nn(X, Y), g3(Y, Z, U)." in texts
        # the recursive rule folds too (its g4 literal survives)
        assert any(
            r.head.atom.predicate == "p@nn" and "qq" in str(r) for r in result.program.rules
        )
        assert set(result.folded_rules) == {0, 3}

    def test_fold_preserves_answers(self):
        program = example9_adorned()
        ri, bis, name = example9_fold_spec()
        result = fold_program(program, ri, bis, name)
        assert_same_answers(program, result.program)

    def test_fold_enables_lemma51(self):
        program = example9_adorned()
        ri, bis, name = example9_fold_spec()
        result = fold_program(program, ri, bis, name)
        folded_recursive = next(
            i
            for i, r in enumerate(result.program.rules)
            if r.head.atom.predicate == "p@nn" and "qq" in str(r)
        )
        assert lemma51_deletable(result.program, folded_recursive) is not None

    def test_fold_then_delete_equivalent(self):
        program = example9_adorned()
        ri, bis, name = example9_fold_spec()
        folded = fold_program(program, ri, bis, name).program
        report = delete_rules(folded, method="lemma51", use_chase=False, use_sagiv=False)
        assert report.count >= 1
        assert_same_answers(program, report.program)

    def test_auto_view_name(self):
        program = example9_adorned()
        result = fold_program(program, 0, (0, 1))
        assert result.view_rule.head.atom.predicate == "view1"

    def test_name_collision_rejected(self):
        program = example9_adorned()
        with pytest.raises(TransformError):
            fold_program(program, 0, (0, 1), "p@nn")

    def test_local_variable_leak_blocks_fold(self):
        # The view body has local variable W (not exported would require
        # restricting define_view; here all vars are exported, so build
        # a target where the candidate image is shared with the head).
        program = adorned_from_text(
            """
            q@n(X) :- a(X, Y), b(Y).
            r@nn(X, Y) :- a(X, Y), b(Y).
            ?- q@n(X).
            """
        )
        # fold a(X,Y),b(Y) from rule 0 exporting only X would lose Y;
        # define_view exports everything, so instead check embedding
        # does fold rule 1 (legal: Y is exported).
        result = fold_program(program, 0, (0, 1), "v")
        assert set(result.folded_rules) == {0, 1}

    def test_no_spurious_folds(self):
        program = adorned_from_text(
            """
            q@n(X) :- a(X, Y), b(Y).
            r@n(X) :- a(X, Y), c(Y).
            ?- q@n(X).
            """
        )
        result = fold_program(program, 0, (0, 1), "v")
        assert set(result.folded_rules) == {0}
