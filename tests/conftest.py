"""Shared helpers for the test suite.

The workhorse is :func:`assert_query_equivalent`: evaluate two programs
over a batch of random databases and require identical query answers.
Most suites inline their own variant (they compare through adorned
programs, optimization results, or projected answers); this generic
form is the one to reach for when adding new transformation tests.
"""

from __future__ import annotations

from repro.datalog import Database, Program
from repro.engine import EngineOptions, evaluate
from repro.workloads.edb import random_edb


def answers_on(program: Program, db: Database, **options) -> frozenset:
    """Evaluate and return the query answers (keyword engine options)."""
    return evaluate(program, db, EngineOptions(**options)).answers()


def assert_query_equivalent(
    p1: Program,
    p2: Program,
    seeds=range(5),
    rows: int = 25,
    domain: int = 10,
    options2: EngineOptions | None = None,
    project_left=None,
):
    """Require p1 and p2 to compute the same query answers on a batch
    of random EDBs (schema taken from the union of both programs).

    *project_left* optionally maps p1's answer tuples before comparison
    (used when p2 answers a projected version of p1's query).
    """
    merged = Program(p1.rules + p2.rules)  # schema source only
    for seed in seeds:
        db = random_edb(merged, rows=rows, domain=domain, seed=seed)
        a1 = evaluate(p1, db).answers()
        if project_left is not None:
            a1 = frozenset(project_left(t) for t in a1)
        a2 = evaluate(p2, db, options2 or EngineOptions()).answers()
        assert a1 == a2, (
            f"answer mismatch on seed {seed}:\n"
            f"  p1 extra: {sorted(a1 - a2)[:5]}\n"
            f"  p2 extra: {sorted(a2 - a1)[:5]}"
        )
