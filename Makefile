PYTHON ?= python
export PYTHONPATH := src

.PHONY: test oracle faults incremental recovery durability check bench report lint analyze

test:  ## tier-1 test suite
	$(PYTHON) -m pytest -x -q

oracle:  ## differential oracle suite (fixed Hypothesis randomness)
	$(PYTHON) -m pytest tests/oracle -q --hypothesis-seed=0

faults:  ## robustness suites: governor limits, fault injection, oracle property
	$(PYTHON) -m pytest tests/engine/test_governor.py tests/engine/test_faults.py tests/oracle/test_faults.py -q

incremental:  ## IVM suites: differential maintenance oracle + session properties
	$(PYTHON) -m pytest tests/oracle/test_incremental.py tests/engine/test_incremental.py -q --hypothesis-seed=0

recovery:  ## crash-recovery oracle: injected crash points x bit-identity to from-scratch
	$(PYTHON) -m pytest tests/oracle/test_recovery.py -q --hypothesis-seed=0

durability:  ## durable-runtime unit suites: WAL framing, snapshots, recovery rungs, serve CLI
	$(PYTHON) -m pytest tests/engine/test_durability.py tests/test_cli.py -q

# The gate: tier-1 plus the oracle suite, all Hypothesis runs pinned
# to a fixed seed so `make check` is reproducible run to run.
check:
	$(PYTHON) -m pytest -x -q --hypothesis-seed=0
	$(PYTHON) -m pytest tests/oracle -q --hypothesis-seed=0

lint:  ## static analysis: ruff + mypy over src, repro-lint over workloads
	$(PYTHON) -m ruff check src tests benchmarks
	$(PYTHON) -m mypy
	$(PYTHON) scripts/lint_workloads.py

analyze:  ## abstract-interpretation gate: DL018-DL024 clean over all workloads
	$(PYTHON) scripts/lint_workloads.py --analyze-only

bench:  ## statistically careful wall-clock benchmarks
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerates the EXPERIMENTS.md tables; exits nonzero if any optimized
# configuration derived more facts than its unoptimized baseline.
report:
	$(PYTHON) benchmarks/run_report.py
