#!/usr/bin/env python
"""Gate: every workload family and paper example is static-analysis clean.

Two passes over each generated program:

- :func:`repro.analysis.lint_program` (``repro lint``): no errors —
  or, under strict promotion, warnings.  Infos are expected: they are
  the optimizer narrating what it will do (existential positions,
  boolean subqueries, the monadic rewrite).
- :func:`repro.analysis.analyze_program` (``repro analyze``): the
  abstract-interpretation domains must raise **no** DL018–DL024
  diagnostic at all, infos included.  The workloads are the repo's
  measurement corpus; a sort conflict, bound blowup, or base-case-less
  recursion in one of them is a generator bug, not narration.

``--analyze-only`` skips the lint pass (the Makefile's ``analyze``
target runs it so ``make analyze`` exercises just the new framework).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import analyze_program, lint_program  # noqa: E402
from repro.workloads import paper_examples  # noqa: E402
from repro.workloads.families import all_families  # noqa: E402

#: the abstract-interpretation codes the analyzer gate forbids outright
ABSINT_CODES = frozenset(f"DL{i:03d}" for i in range(18, 25))


def gate_programs() -> dict:
    programs = dict(all_families())
    programs["paper_example1"] = paper_examples.example1_program()
    programs["paper_example2"] = paper_examples.example2_program()
    programs["paper_example5"] = paper_examples.example5_program()
    return programs


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    analyze_only = "--analyze-only" in argv
    programs = gate_programs()
    failed = 0
    for name, program in sorted(programs.items()):
        if not analyze_only:
            report = lint_program(program, source=name)
            if report.exit_code(strict=True) != 0:
                failed += 1
                print(f"-- {name}: NOT strict-clean")
                print(report.render_text())
        result = analyze_program(program, source=name)
        flagged = [
            d for d in result.report.diagnostics if d.code in ABSINT_CODES
        ]
        if flagged:
            failed += 1
            print(f"-- {name}: abstract interpretation NOT clean")
            for diag in flagged:
                print(f"   {diag.code} {diag.predicate}: {diag.message}")
    passes = "analyze" if analyze_only else "lint+analyze"
    print(f"checked {len(programs)} programs ({passes}), {failed} failed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
