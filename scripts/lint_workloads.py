#!/usr/bin/env python
"""Gate: every workload family and paper example is ``lint --strict`` clean.

Runs :func:`repro.analysis.lint_program` over each generated program
and fails (exit 1) if any produces an error — or, under strict
promotion, a warning.  Infos are expected: they are the optimizer
narrating what it will do (existential positions, boolean subqueries,
the monadic rewrite).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import lint_program  # noqa: E402
from repro.workloads import paper_examples  # noqa: E402
from repro.workloads.families import all_families  # noqa: E402


def main() -> int:
    programs = dict(all_families())
    programs["paper_example1"] = paper_examples.example1_program()
    programs["paper_example2"] = paper_examples.example2_program()
    programs["paper_example5"] = paper_examples.example5_program()
    failed = 0
    for name, program in sorted(programs.items()):
        report = lint_program(program, source=name)
        if report.exit_code(strict=True) != 0:
            failed += 1
            print(f"-- {name}: NOT strict-clean")
            print(report.render_text())
    print(f"linted {len(programs)} programs, {failed} failed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
