"""Extension bench — three routes to goal direction.

The paper's bottom-up framing has two classic answers to selective
queries: rewrite (Magic Sets, simulating goal direction inside the
fixpoint) or change the evaluator (tabled top-down resolution, Prolog's
model made terminating).  This bench runs both against the
unrestricted bottom-up baseline on bound-source transitive closure —
context for the paper's claim that its projection optimization is
orthogonal to all of them.

Expected shape: magic and top-down do comparable, goal-restricted work;
the unrestricted fixpoint computes the full closure and loses by a
factor growing with graph size.
"""

import pytest

from repro.datalog import Database, parse
from repro.engine import evaluate
from repro.engine.topdown import evaluate_topdown
from repro.rewriting import magic_sets
from repro.workloads.graphs import chain, random_digraph

SIZES = [60, 150]


def program(source):
    return parse(
        f"""
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
        ?- tc({source}, Y).
        """
    )


def make_db(n, seed=0):
    # forward-only edges (a DAG): the cone reachable from a late source
    # is small, which is the regime goal direction pays off in
    forward = {(a, b) for a, b in random_digraph(n, n, seed=seed) if a < b}
    edges = sorted(set(chain(n)) | forward)
    return Database.from_dict({"edge": edges})


@pytest.mark.parametrize("n", SIZES)
def test_bottom_up_unrestricted(benchmark, n):
    prog = program(n - 10)
    db = make_db(n)
    benchmark.group = f"goal-direction n={n}"
    benchmark(lambda: evaluate(prog, db))


@pytest.mark.parametrize("n", SIZES)
def test_magic_sets(benchmark, n):
    prog = program(n - 10)
    rewritten = magic_sets(prog).program
    db = make_db(n)
    benchmark.group = f"goal-direction n={n}"
    result = benchmark(lambda: evaluate(rewritten, db))
    assert result.answers() == evaluate(prog, db).answers()


@pytest.mark.parametrize("n", SIZES)
def test_tabled_top_down(benchmark, n):
    prog = program(n - 10)
    db = make_db(n)
    benchmark.group = f"goal-direction n={n}"
    result = benchmark(lambda: evaluate_topdown(prog, db))
    reference = evaluate(prog, db)
    assert result.answers == reference.answers()
    assert result.stats.facts_derived < reference.stats.facts_derived
