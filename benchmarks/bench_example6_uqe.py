"""Experiment E6 — uniform query equivalence on left-linear transitive
closure (Examples 5 and 6).

Example 5 shows Sagiv's (uniform equivalence) test deletes *nothing*
from the left-linear program; Example 6's uniform query equivalence
reduces it to the single rule ``a@nd(X) :- p(X, Y)``.  This bench
measures what that deletion buys: the original adorned program still
computes the full binary closure ``a@nn`` as an auxiliary, while the
optimized program scans ``p`` once.

Expected shape: optimized is non-recursive, derives |sources| facts
instead of O(V²), and the gap grows superlinearly with graph size.
"""

import pytest

from repro.core import delete_rules
from repro.datalog import Database
from repro.engine import evaluate
from repro.workloads.graphs import cycle, random_digraph
from repro.workloads.paper_examples import adorned_from_text, example5_adorned_text

SIZES = [40, 80, 160]


def make_db(n, seed=0):
    edges = sorted(set(cycle(n)) | set(random_digraph(n, 2 * n, seed=seed)))
    return Database.from_dict({"p": edges})


def programs():
    adorned = adorned_from_text(example5_adorned_text())
    optimized = delete_rules(adorned, use_sagiv=False).program
    assert len(optimized) == 1  # the Example 6 result
    return adorned.to_program(), optimized.to_program()


@pytest.mark.parametrize("n", SIZES)
def test_left_linear_original(benchmark, n):
    original, _ = programs()
    db = make_db(n)
    benchmark.group = f"example6 n={n}"
    benchmark(lambda: evaluate(original, db))


@pytest.mark.parametrize("n", SIZES)
def test_left_linear_optimized(benchmark, n):
    original, optimized = programs()
    db = make_db(n)
    benchmark.group = f"example6 n={n}"
    result = benchmark(lambda: evaluate(optimized, db))
    reference = evaluate(original, db)
    assert result.answers() == reference.answers()
    assert result.stats.facts_derived < reference.stats.facts_derived / 4
    assert result.stats.iterations < reference.stats.iterations
