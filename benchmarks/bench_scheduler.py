"""Experiment SCHED — SCC-condensation scheduling vs the monolithic
stratum loop (section 3.1's independent components, applied to the
evaluation schedule).

The claim: partitioning a stratum into its SCC condensation and
evaluating units in topological order removes two kinds of wasted work
the monolithic fixpoint pays for:

- non-recursive rules re-enter every round of their stratum's fixpoint
  (their delta firings rediscover nothing once their inputs stop
  changing) — scheduled units run them exactly once, outside any loop;
- a unit's delta specialization covers only its own SCC members, so
  sibling components' facts never seed delta plans.

Workloads: ``sibling_components`` (three independent transitive
closures under one query — also the ≥3-sibling shape ``--parallel``
batches), ``boolean_chain`` (the multi-component boolean family, whose
monolithic round count grows with the chain while the scheduler fires
each unit once), and ``guarded_items`` (Example-2 shape: a
non-recursive guard query above a recursion).

Expected shape: scheduled join work ≤ monolithic on every workload,
strictly less on all three above; identical fixpoints throughout.
Wall-clock for ``--parallel`` depends on core count and is reported by
``run_report.py`` (BENCH_scheduler.json) rather than asserted here.
"""

import pytest

from repro.datalog import Database
from repro.engine import EngineOptions, evaluate
from repro.workloads.families import boolean_chain, guarded_items, sibling_components

SIZES = [30, 60]

CONFIGS = {
    "monolithic": {"use_scc": False},
    "scc": {},
    "scc+parallel": {"parallel": 4},
}


def _chain(n, base=0):
    return [(base + i, base + i + 1) for i in range(n)]


def sibling_db(n):
    """Three disjoint n-chains: each TC unit is deep and independent."""
    return Database.from_dict(
        {"edge1": _chain(n), "edge2": _chain(n, 1000), "edge3": _chain(n, 2000)}
    )


def boolean_db(n):
    """Chain guards where only the last tuple satisfies the mark, so
    the monolithic loop cannot shortcut the boolean levels."""
    return Database.from_dict(
        {
            "item": [(i,) for i in range(n)],
            "c1": _chain(n),
            "c2": _chain(n),
            "c3": _chain(n),
            "mark": [(n,)],
        }
    )


def guarded_db(n):
    return Database.from_dict(
        {"item": _chain(n), "link": _chain(n), "mark": [(n,)]}
    )


WORKLOADS = {
    "sibling": (sibling_components, sibling_db),
    "boolean-chain": (boolean_chain, boolean_db),
    "guarded": (guarded_items, guarded_db),
}


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("config", list(CONFIGS))
def test_scheduler(benchmark, workload, config, n):
    make_program, make_db = WORKLOADS[workload]
    prog = make_program()
    db = make_db(n)
    opts = EngineOptions(**CONFIGS[config])
    benchmark.group = f"scheduler {workload} n={n}"
    result = benchmark(lambda: evaluate(prog, db, opts))
    if config == "monolithic":
        return
    mono = evaluate(prog, make_db(n), EngineOptions(use_scc=False))
    assert result.stats.fact_counts == mono.stats.fact_counts
    # the tentpole's work claims, asserted at the point of measurement
    assert result.stats.units_scheduled >= 2
    assert result.stats.join_work < mono.stats.join_work
    assert sum(result.stats.unit_rounds.values()) == result.stats.iterations
    if workload == "boolean-chain":
        assert result.stats.iterations < mono.stats.iterations
    if config == "scc+parallel" and workload == "sibling":
        assert result.stats.units_parallel >= 3
        seq = evaluate(prog, make_db(n), EngineOptions())
        par, srt = result.stats.as_dict(), seq.stats.as_dict()
        assert par.pop("units_parallel") > srt.pop("units_parallel")
        # benchmark() reran on a warmed database, so shared-relation
        # index builds differ from the cold run; the cold-for-cold
        # bit-identity check lives in tests/engine/test_scheduler.py
        par.pop("index_builds"), srt.pop("index_builds")
        assert par == srt  # determinism: merge order never leaks
