"""Extension bench — the optimizer under stratified negation.

Not a paper table (negation is the paper's future-work list); this
bench documents that the section-6 extension keeps the core win: the
existential projection still fires on the positive recursion while the
negated filter is handled stratum-by-stratum, and the optimized program
never does more work.

Workload: the policy-audit family — versioned dependency closure with
an existential version column and a negated waiver check.
"""

import pytest

from repro.core.pipeline import optimize
from repro.datalog import Database, parse
from repro.engine import evaluate
from repro.workloads.graphs import layered_dag

SIZES = [(8, 8), (10, 12)]
VERSIONS = 6


def program():
    return parse(
        """
        exposed(S) :- uses(S, C, V), deprecated(C), not waived(S).
        uses(S, C, V) :- depends(S, C, V).
        uses(S, C, V) :- depends(S, M, W), uses(M, C, V).
        ?- exposed(S).
        """
    )


def make_db(layers, width, seed=0):
    edges = layered_dag(layers, width, fanout=3, seed=seed)
    nodes = sorted({n for e in edges for n in e})
    return Database.from_dict(
        {
            "depends": [(a, b, (a + b) % VERSIONS) for a, b in edges],
            "deprecated": [(n,) for n in nodes[-width:]],
            "waived": [(n,) for n in nodes if n % 5 == 0],
        }
    )


@pytest.mark.parametrize("layers,width", SIZES)
def test_negation_original(benchmark, layers, width):
    db = make_db(layers, width)
    benchmark.group = f"negation layers={layers}"
    benchmark(lambda: evaluate(program(), db))


@pytest.mark.parametrize("layers,width", SIZES)
def test_negation_optimized(benchmark, layers, width):
    prog = program()
    result = optimize(prog)
    assert result.deletion is None  # phase 3 conservatively skipped
    db = make_db(layers, width)
    benchmark.group = f"negation layers={layers}"
    bench_result = benchmark(lambda: result.evaluate(db))
    assert result.answers(db) == result.reference_answers(db)
    original = evaluate(prog, db).stats
    assert bench_result.stats.facts_derived < original.facts_derived
    assert bench_result.stats.derivations <= original.derivations
