"""Experiment COLUMNAR — the columnar data plane vs the tuple kernels
vs the interpreter (section 2's repeated-evaluation cost, attacked at
the representation layer).

The claim: interning constants once into dense ids, packing rows into
single int64s, and pushing the semi-naive frontier through vectorized
batch join kernels removes per-row Python dispatch from the fixpoint's
hot loop — while staying *observationally identical* to the tuple
engine (same answers, same fact counts, same engine-invariant
counters; the property/oracle suites are the exhaustive safety net,
these benchmarks re-assert it at the point of measurement).

Workloads: ``tc-chain`` (one deep linear transitive closure — the
canonical delta-frontier pipeline) and ``sibling`` (three disjoint
closures under one program — the multi-unit shape the scheduler feeds
the columnar plane one unit at a time).

Expected shape: columnar ≤ tuple-kernel ≤ interpreter wall-clock at
every size, with the columnar advantage growing with the frontier
width (see BENCH_columnar.json for the committed ablation at report
sizes, where the gap exceeds 3×).
"""

import pytest

from repro.datalog import Database
from repro.datalog.parser import parse
from repro.engine import EngineOptions, evaluate

SIZES = [60, 120]

#: the degradation ladder's three rungs, benchmarked per index mode
CONFIGS = {
    "interpreter": {"use_kernels": False, "use_columnar": False},
    "tuple-kernel": {"use_columnar": False},
    "columnar": {},
}

TC_PROGRAM = """
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- tc(X, Y), edge(Y, Z).
    ?- tc(X, Y).
"""

SIBLING_PROGRAM = """
    tc1(X, Y) :- edge1(X, Y).
    tc1(X, Z) :- tc1(X, Y), edge1(Y, Z).
    tc2(X, Y) :- edge2(X, Y).
    tc2(X, Z) :- tc2(X, Y), edge2(Y, Z).
    tc3(X, Y) :- edge3(X, Y).
    tc3(X, Z) :- tc3(X, Y), edge3(Y, Z).
    ?- tc1(X, Y).
"""


def _chain(n, base=0):
    return [(base + i, base + i + 1) for i in range(n)]


def tc_db(n):
    """One n-chain: the deepest frontier for a single closure."""
    return Database.from_dict({"edge": _chain(n)})


def sibling_db(n):
    """Three disjoint n-chains: each closure is deep and independent."""
    return Database.from_dict(
        {"edge1": _chain(n), "edge2": _chain(n, 1000), "edge3": _chain(n, 2000)}
    )


WORKLOADS = {
    "tc-chain": (TC_PROGRAM, tc_db),
    "sibling": (SIBLING_PROGRAM, sibling_db),
}


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("use_indexes", [True, False], ids=["index", "noindex"])
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("config", list(CONFIGS))
def test_columnar(benchmark, workload, config, use_indexes, n):
    program_text, make_db = WORKLOADS[workload]
    program = parse(program_text)
    db = make_db(n)
    opts = EngineOptions(use_indexes=use_indexes, **CONFIGS[config])
    benchmark.group = (
        f"columnar {workload} n={n} {'index' if use_indexes else 'noindex'}"
    )
    result = benchmark(lambda: evaluate(program, db.copy(), opts))
    if config == "columnar":
        # identical observables at the point of measurement: answers,
        # fixpoint sizes, and every engine-invariant counter match the
        # tuple engine bit for bit (cold database per run, so lazily
        # built index work is comparable)
        tup = evaluate(
            program,
            db.copy(),
            EngineOptions(use_indexes=use_indexes, **CONFIGS["tuple-kernel"]),
        )
        col = evaluate(program, db.copy(), opts)
        assert col.answers() == tup.answers()
        assert col.stats.fact_counts == tup.stats.fact_counts
        assert col.stats.as_dict(engine_invariant=True) == tup.stats.as_dict(
            engine_invariant=True
        )
        # the columnar plane actually engaged (not a silent fallback)
        assert col.stats.batch_probes > 0
        assert col.stats.dict_size > 0
