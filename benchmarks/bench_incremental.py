"""Workloads for the incremental-maintenance benchmark (IVM).

The claim under measurement: for small update batches (~1% of the EDB),
maintaining a materialized fixpoint through
:class:`~repro.engine.incremental.IncrementalSession` beats re-running
the fixpoint from scratch by a wide margin (the report gates on >= 5x).
The workloads are shaped so the *affected cone* of an update is small
relative to the full fixpoint:

``tc_hotcold``
    Transitive closure over a forest of four *cold* n-edge chains plus
    one *hot* chain a tenth their length, all in one ``edge`` relation.
    The update batch is ~1% of the EDB and lands entirely on the hot
    chain (inserts extend its tail, retractions sever its head), so
    the affected cone is a sliver of the O(n^2)-sized materialized
    fixpoint — the classic IVM hot-partition regime.  Severing *head*
    edges converges in O(1) overdeletion rounds; deleting a chain's
    tail has the same-sized cone but cascades backward one edge per
    semi-naive round, an inherently round-bound worst case the oracle
    suite covers for correctness while the benchmark measures the
    small-cone regime the IVM claim is about.

``siblings``
    Four independent transitive closures feeding one query (the
    scheduler's parallel shape).  Updates touch only the first
    component, so three of the five evaluation units never reactivate —
    the benchmark shows the condensation-level skipping, not just
    delta-level savings.
"""

from __future__ import annotations

from repro.datalog import Database, parse
from repro.workloads.families import sibling_components

__all__ = ["SIZES", "WORKLOADS", "Workload"]

SIZES = [120, 240]

TC = """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
"""


def chain(n, offset=0):
    return [(offset + i, offset + i + 1) for i in range(n)]


def one_percent(n):
    return max(1, n // 100)


class Workload:
    """One IVM benchmark case: a program, a base EDB factory, and the
    1%-sized insert/retract batches applied to it."""

    def __init__(self, program, make_db, batches):
        self.program = program
        self.make_db = make_db
        self._batches = batches

    def batch(self, kind):
        return {p: list(rows) for p, rows in self._batches[kind].items()}

    def updated_rows(self, kind):
        """The updated EDB contents (for the from-scratch reference)."""
        db = self.make_db()
        rows = {p: set(db.rows(p)) for p in db.predicates()}
        for pred, batch in self._batches[kind].items():
            if kind == "insert":
                rows.setdefault(pred, set()).update(map(tuple, batch))
            else:
                rows[pred].difference_update(map(tuple, batch))
        return rows


def tc_hotcold(n) -> Workload:
    cold, hot = 4, max(4, n // 10)
    spacing = n + 2  # keep the chains' node ranges disjoint
    hot_offset = cold * spacing
    edges = [
        row for j in range(cold) for row in chain(n, offset=j * spacing)
    ]
    edges += chain(hot, offset=hot_offset)
    k = one_percent(len(edges))
    assert k < hot, "the update batch must fit inside the hot chain"
    return Workload(
        parse(TC),
        lambda: Database.from_dict({"edge": list(edges)}),
        {
            "insert": {"edge": chain(k, offset=hot_offset + hot)},
            "retract": {"edge": chain(k, offset=hot_offset)},
        },
    )


def siblings(n) -> Workload:
    program = sibling_components(4)
    k = one_percent(n)
    base = {f"edge{i}": chain(n) for i in range(1, 5)}
    return Workload(
        program,
        lambda: Database.from_dict({p: list(rows) for p, rows in base.items()}),
        {
            "insert": {"edge1": chain(k, offset=n)},
            "retract": {"edge1": chain(k)},
        },
    )


def workloads() -> dict[str, Workload]:
    out = {}
    for n in SIZES:
        out[f"tc-hotcold-n{n}"] = tc_hotcold(n)
    out[f"siblings-4x{SIZES[0]}"] = siblings(SIZES[0])
    return out


WORKLOADS = workloads()
