"""Experiment KX — compiled rule kernels vs the plan interpreter.

The kernel compiler (:mod:`repro.engine.kernel`) claims the join hot
path gets measurably faster while every observable — answers, fact
counts, work counters, provenance — stays bit-identical.  This bench
measures the wall-clock side of that claim on the two workloads the
tentpole targets (Example 3's dense transitive closure and the
payload-k arity sweep), with the identity side asserted in the bench
body via :func:`harness.kernel_ablation` so a divergence fails the
suite instead of skewing a table.

Run with::

    pytest benchmarks/bench_kernel_ablation.py --benchmark-only
"""

import pytest

from harness import Workload, kernel_ablation

import bench_arity_sweep as p5
import bench_example3_projection as e3


def workloads():
    original, _ = e3.programs()
    n = e3.SIZES[-1]
    return {
        "e3-binary-tc": Workload(f"e3 binary TC V={n}", original, e3.make_db(n)),
        "p5-payload-k2": Workload(
            "p5 payload k=2", p5.program_with_payload(2), p5.make_db(2)
        ),
    }


@pytest.mark.parametrize("name", sorted(workloads()))
def test_kernel_engine(benchmark, name):
    wl = workloads()[name]
    benchmark.group = f"kernel ablation {name}"
    result = benchmark(wl.run)
    assert result.stats.kernel_launches > 0


@pytest.mark.parametrize("name", sorted(workloads()))
def test_interpreter_engine(benchmark, name):
    wl = workloads()[name].interpreter_baseline()
    benchmark.group = f"kernel ablation {name}"
    result = benchmark(wl.run)
    assert result.stats.kernel_launches == 0


@pytest.mark.parametrize("name", sorted(workloads()))
def test_kernel_preserves_all_work_counters(benchmark, name):
    """The identity half of the claim, exercised under the benchmark
    harness: kernels must not change a single work counter."""
    wl = workloads()[name]
    kernel_stats, interp_stats = benchmark.pedantic(
        lambda: kernel_ablation(wl), rounds=1, iterations=1
    )
    assert kernel_stats.as_dict(engine_invariant=True) == interp_stats.as_dict(
        engine_invariant=True
    )
