"""Experiment T33 — Theorem 3.3, constructive direction.

For a right-linear chain program with query ``p^nd``, the language is
regular and an equivalent *monadic* program exists; we build it via the
grammar → NFA → unary-predicates construction.  This bench compares the
binary chain program against its monadic equivalent — the same
arity-reduction effect as Example 3, obtained through the grammar view.

Expected shape: monadic derives O(V·states) facts instead of O(V²) and
wins by a factor growing with graph size.
"""

import pytest

from repro.datalog import Database, parse
from repro.engine import evaluate
from repro.grammar import monadic_program_for
from repro.workloads.graphs import cycle, random_digraph

SIZES = [40, 80]


def chain_program():
    # a two-relation right-linear language: e* f
    return parse(
        """
        a(X, Y) :- e(X, Z), a(Z, Y).
        a(X, Y) :- f(X, Y).
        ?- a(X, Y).
        """
    )


def make_db(n, seed=0):
    e = sorted(set(cycle(n)) | set(random_digraph(n, n, seed=seed)))
    f = random_digraph(n, n // 2, seed=seed + 1)
    return Database.from_dict({"e": e, "f": f})


@pytest.mark.parametrize("n", SIZES)
def test_binary_chain_program(benchmark, n):
    program = chain_program()
    db = make_db(n)
    benchmark.group = f"t33 n={n}"
    benchmark(lambda: evaluate(program, db))


@pytest.mark.parametrize("n", SIZES)
def test_monadic_equivalent(benchmark, n):
    program = chain_program()
    monadic = monadic_program_for(program)
    assert monadic is not None
    db = make_db(n)
    benchmark.group = f"t33 n={n}"
    result = benchmark(lambda: evaluate(monadic, db))
    reference = evaluate(program, db)
    assert {t[0] for t in result.answers()} == {
        t[0] for t in reference.answers()
    }
    assert result.stats.facts_derived < reference.stats.facts_derived
