"""Experiment P5 — runtime vs. arity of the recursive predicate.

Section 3.2 cites [Bancilhon and Ramakrishnan 87]: reducing the arity
of recursive predicates is a first-order performance factor.  This
sweep makes the relationship explicit: the same reachability recursion
carries k = 0..3 existential payload columns; projection pushing always
reduces it to the k = 0 form.

Expected shape: cost grows steeply with k (the fact space is multiplied
by |domain| per extra column); the optimized program's cost is flat in
k.  This is the ablation behind every other bench in the suite.
"""

import pytest

from repro.core.pipeline import optimize
from repro.datalog import Database, parse
from repro.engine import EngineOptions, evaluate
from repro.workloads.graphs import random_digraph

PAYLOAD = 6  # values per payload column
NODES = 24


def program_with_payload(k: int):
    """Reachability carrying k payload columns picked at the edge."""
    pay_vars = [f"T{i}" for i in range(k)]
    head = ", ".join(["X", "Y", *pay_vars])
    tags = ", ".join(
        f"tag{i}(Y, {v})" for i, v in enumerate(pay_vars)
    )
    exit_rule = f"reach({head}) :- edge(X, Y){', ' + tags if tags else ''}."
    rec_head = ", ".join(["X", "Y", *pay_vars])
    rec_rule = f"reach({rec_head}) :- edge(X, Z), reach({', '.join(['Z', 'Y', *pay_vars])})."
    query_args = ", ".join(["X", "Y"] + ["_"] * k)
    return parse(f"{exit_rule}\n{rec_rule}\n?- reach({query_args}).")


def make_db(k: int, seed=0):
    data = {"edge": random_digraph(NODES, 3 * NODES, seed=seed)}
    for i in range(k):
        data[f"tag{i}"] = [(n, (n + i) % PAYLOAD + 100) for n in range(NODES)] + [
            (n, (n * 7 + i) % PAYLOAD) for n in range(NODES)
        ]
    return Database.from_dict(data)


@pytest.mark.parametrize("k", [0, 1, 2])
def test_arity_sweep_original(benchmark, k):
    program = program_with_payload(k)
    db = make_db(k)
    benchmark.group = f"arity k={k}"
    benchmark(lambda: evaluate(program, db))


@pytest.mark.parametrize("k", [0, 1, 2])
def test_arity_sweep_optimized(benchmark, k):
    program = program_with_payload(k)
    result = optimize(program)
    db = make_db(k)
    benchmark.group = f"arity k={k}"
    bench_result = benchmark(lambda: result.evaluate(db))
    assert result.answers(db) == result.reference_answers(db)
    if k > 0:
        original = evaluate(program, db).stats
        assert bench_result.stats.facts_derived < original.facts_derived


@pytest.mark.parametrize("k", [2])
def test_indexed_engine_vs_scan_baseline(benchmark, k):
    """Index ablation at the largest payload: the indexed engine must
    beat the seed scan engine by >= 5x on rows scanned with identical
    answers."""
    program = program_with_payload(k)
    db = make_db(k)
    benchmark.group = f"arity index ablation k={k}"
    indexed = benchmark(lambda: evaluate(program, db))
    scan = evaluate(program, db, EngineOptions(use_indexes=False))
    assert indexed.answers() == scan.answers()
    assert indexed.stats.rows_scanned * 5 <= scan.stats.rows_scanned
    assert indexed.stats.join_work * 5 <= scan.stats.join_work
