"""Experiment E12 — the section-6 transformation (Example 12).

Plain projection pushing cannot reduce the recursive arity of Example
12's program (``Z`` is needed inside the recursion because ``c(Z)`` is
re-checked at every level).  The paper's transformed program hoists the
check and recurses with arity 2.  This bench measures the payoff of
that transformation, which the paper offers as motivation for research
beyond its sufficient conditions.

Expected shape: the transformed program derives ~|distinct Z| times
fewer recursive facts and wins increasingly on data with many tags.
"""

import pytest

from repro.datalog import Database
from repro.engine import evaluate
from repro.workloads.graphs import chain
from repro.workloads.paper_examples import example12_original, example12_transformed

SIZES = [(30, 10), (60, 20)]  # (ladder height, tag count)


def make_db(height, tags):
    up = chain(height)
    dn = [(b, a) for a, b in chain(height)]
    b = [(i, i, t) for i in range(height) for t in range(tags)]
    c = [(t,) for t in range(tags)]
    return Database.from_dict({"up": up, "dn": dn, "b": b, "c": c})


@pytest.mark.parametrize("height,tags", SIZES)
def test_example12_original(benchmark, height, tags):
    program = example12_original()
    db = make_db(height, tags)
    benchmark.group = f"example12 h={height} tags={tags}"
    benchmark(lambda: evaluate(program, db))


@pytest.mark.parametrize("height,tags", SIZES)
def test_example12_transformed(benchmark, height, tags):
    original, transformed = example12_original(), example12_transformed()
    db = make_db(height, tags)
    benchmark.group = f"example12 h={height} tags={tags}"
    result = benchmark(lambda: evaluate(transformed, db))
    reference = evaluate(original, db)
    assert result.answers() == reference.answers()
    assert result.stats.facts_derived < reference.stats.facts_derived
