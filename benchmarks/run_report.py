"""Regenerate the EXPERIMENTS.md measurement tables in one shot.

Unlike ``pytest benchmarks/ --benchmark-only`` (statistically careful,
slow), this script runs each configuration once with a warm-up and
prints paper-shaped tables: experiment id, configurations, wall-clock,
and the work counters the paper's arguments are about.

Usage::

    python benchmarks/run_report.py            # all experiments
    python benchmarks/run_report.py e3 e6 p5   # a selection
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.pipeline import optimize
from repro.datalog.parser import parse
from repro.engine import EngineOptions, evaluate
from repro.engine.topdown import evaluate_topdown
from repro.rewriting import magic_sets

import bench_columnar as col
import bench_durability as dur
import bench_example2_cut as e2
import bench_example3_projection as e3
import bench_example6_uqe as e6
import bench_example12_transform as e12
import bench_arity_sweep as p5
import bench_incremental as ivm
import bench_magic_composition as p4
import bench_planner as plan
import bench_scheduler as sched
import bench_topdown_vs_magic as td


#: optimized configurations that derived MORE facts than their
#: unoptimized baseline — populated by the reports, checked by main(),
#: which exits nonzero if any appear (the paper's "at least as well"
#: claim, enforced on every regenerated table).
VIOLATIONS: list[str] = []

#: informational findings — printed at the end but never failing the
#: build.  Wall-clock ratios live here: they measure the machine under
#: the bench (CPU, filesystem, thermal state) as much as the engine,
#: so gating on them makes CI flaky.  Hard gates use work counters
#: (join work, fact counts), which are machine-independent.
WARNINGS: list[str] = []


def warn(message: str) -> None:
    WARNINGS.append(message)


def check_no_extra_facts(experiment: str, label: str, optimized: int, baseline: int) -> None:
    if optimized > baseline:
        VIOLATIONS.append(
            f"{experiment}: {label} derived {optimized} facts "
            f"vs {baseline} for its unoptimized baseline"
        )


def load_baseline(path: Path) -> "dict | None":
    """The committed ``BENCH_*.json`` baseline, or ``None`` with a warning.

    A missing or malformed baseline (fresh checkout, interrupted earlier
    run, merge damage) must not crash the report or fail the build — it
    just means there is nothing to diff against this time.  Only *real*
    regressions (fact-count increases vs a readable baseline) exit
    nonzero.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except FileNotFoundError:
        print(
            f"warning: no baseline {path.name}; skipping regression "
            f"comparison (it will be written fresh)",
            file=sys.stderr,
        )
        return None
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
        print(
            f"warning: baseline {path.name} is unreadable ({exc}); "
            f"skipping regression comparison and rewriting it",
            file=sys.stderr,
        )
        return None
    if not isinstance(data, dict):
        print(
            f"warning: baseline {path.name} is not a JSON object; "
            f"skipping regression comparison and rewriting it",
            file=sys.stderr,
        )
        return None
    return data


def check_against_baseline(experiment: str, baseline: "dict | None",
                           family: str, config: str, facts: int) -> None:
    """Fact-count regression vs the committed baseline, if comparable.

    Entries the baseline lacks (new family/config, or a hand-edited
    file missing keys) are skipped silently — absence of a baseline
    number is not a regression.
    """
    if baseline is None:
        return
    entry = baseline.get(family, {})
    if not isinstance(entry, dict):
        return
    cfg = entry.get(config, {})
    if not isinstance(cfg, dict):
        return
    recorded = cfg.get("facts_derived")
    if isinstance(recorded, int):
        check_no_extra_facts(
            experiment, f"{config} on {family} vs committed baseline",
            facts, recorded,
        )


def timed(fn):
    fn()  # warm-up
    start = time.perf_counter()
    out = fn()
    return (time.perf_counter() - start) * 1000.0, out


def table(title: str, headers: list[str], rows: list[list]) -> None:
    print()
    print(f"== {title} ==")
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def fmt(ms: float) -> str:
    return f"{ms:9.1f} ms"


def report_e2() -> None:
    rows = []
    for n in e2.SIZES:
        db = e2.make_db(n)
        for label, (prog, opts) in e2.configs(n).items():
            ms, res = timed(lambda p=prog, o=opts: evaluate(p, db, o))
            rows.append([f"n={n}", label, fmt(ms), res.stats.rows_scanned])
    table("E2 — boolean cut (Example 2)", ["size", "config", "time", "rows scanned"], rows)


def report_e3() -> None:
    original, projected = e3.programs()
    rows = []
    for n in e3.SIZES:
        db = e3.make_db(n)
        facts = {}
        for label, prog in (("binary (original)", original), ("unary (projected)", projected)):
            ms, res = timed(lambda p=prog: evaluate(p, db))
            facts[label] = res.stats.facts_derived
            rows.append([f"V={n}", label, fmt(ms), res.stats.facts_derived, res.stats.duplicates])
        check_no_extra_facts(
            "e3", f"unary (projected) V={n}",
            facts["unary (projected)"], facts["binary (original)"],
        )
    table(
        "E3/P2 — projection pushing (Example 3)",
        ["size", "config", "time", "facts", "dups"],
        rows,
    )


def report_e6() -> None:
    original, optimized = e6.programs()
    rows = []
    for n in e6.SIZES:
        db = e6.make_db(n)
        facts = {}
        for label, prog in (("4 rules (original)", original), ("1 rule (optimized)", optimized)):
            ms, res = timed(lambda p=prog: evaluate(p, db))
            facts[label] = res.stats.facts_derived
            rows.append([f"V={n}", label, fmt(ms), res.stats.facts_derived])
        check_no_extra_facts(
            "e6", f"1 rule (optimized) V={n}",
            facts["1 rule (optimized)"], facts["4 rules (original)"],
        )
    table("E6 — uniform query equivalence (Example 6)", ["size", "config", "time", "facts"], rows)


def report_e12() -> None:
    rows = []
    for height, tags in e12.SIZES:
        db = e12.make_db(height, tags)
        facts = {}
        for label, prog in (
            ("arity-3 (original)", e12.example12_original()),
            ("arity-2 (transformed)", e12.example12_transformed()),
        ):
            ms, res = timed(lambda p=prog: evaluate(p, db))
            facts[label] = res.stats.facts_derived
            rows.append([f"h={height} tags={tags}", label, fmt(ms), res.stats.facts_derived])
        check_no_extra_facts(
            "e12", f"arity-2 (transformed) h={height} tags={tags}",
            facts["arity-2 (transformed)"], facts["arity-3 (original)"],
        )
    table("E12 — section-6 transformation", ["size", "config", "time", "facts"], rows)


def report_p4() -> None:
    rows = []
    for layers, width in p4.SIZES:
        db = p4.make_db(layers, width)
        for label, (prog, opts) in p4.configurations().items():
            ms, res = timed(lambda p=prog, o=opts: evaluate(p, db, o))
            rows.append([f"{layers}x{width}", label, fmt(ms), res.stats.facts_derived])
    table("P4 — magic composition", ["dag", "config", "time", "facts"], rows)


def report_p5() -> None:
    rows = []
    for k in (0, 1, 2):
        prog = p5.program_with_payload(k)
        db = p5.make_db(k)
        result = optimize(prog)
        ms_o, res_o = timed(lambda: evaluate(prog, db))
        ms_x, res_x = timed(lambda: result.evaluate(db))
        check_no_extra_facts(
            "p5", f"optimized k={k}",
            res_x.stats.facts_derived, res_o.stats.facts_derived,
        )
        rows.append([f"k={k}", fmt(ms_o), fmt(ms_x)])
    table("P5 — arity sweep", ["payload", "original", "optimized"], rows)


def report_td() -> None:
    rows = []
    for n in td.SIZES:
        prog = td.program(n - 10)
        db = td.make_db(n)
        ms_bu, _ = timed(lambda: evaluate(prog, db))
        ms_m, _ = timed(lambda: evaluate(magic_sets(prog).program, db))
        ms_td, _ = timed(lambda: evaluate_topdown(prog, db))
        rows.append([f"n={n}", fmt(ms_bu), fmt(ms_m), fmt(ms_td)])
    table(
        "TD — goal direction (bottom-up / magic / tabled top-down)",
        ["size", "bottom-up", "magic", "top-down"],
        rows,
    )


def report_ix() -> None:
    """Indexed semi-naive engine vs the ``--no-index`` scan baseline."""
    from harness import Workload, index_ablation

    original, _ = e3.programs()
    n = e3.SIZES[-1]
    cases = [
        Workload(f"e3 binary TC V={n}", original, e3.make_db(n)),
        Workload("p5 payload k=2", p5.program_with_payload(2), p5.make_db(2)),
    ]
    rows = []
    for wl in cases:
        indexed, scan = index_ablation(wl)
        ratio = scan.join_work / max(1, indexed.join_work)
        rows.append([
            wl.label, "indexed", indexed.rows_scanned, indexed.index_probes,
            indexed.index_builds, indexed.join_work, "",
        ])
        rows.append([
            wl.label, "scan (--no-index)", scan.rows_scanned, 0,
            0, scan.join_work, f"x{ratio:.1f}",
        ])
    table(
        "IX — hash indexes vs full scans (identical answers)",
        ["workload", "engine", "rows scanned", "index probes", "builds", "join work", "speedup"],
        rows,
    )


#: machine-readable engine trajectory, regenerated by report_engine()
#: and committed so future engine PRs have a baseline to diff against
ENGINE_JSON = Path(__file__).parent / "BENCH_engine.json"

#: per-family engine configurations: compiled kernels (default engine),
#: the plan interpreter (--no-kernel), and the scan baseline (--no-index)
ENGINE_CONFIGS = {
    "kernel": {},
    "interpreter": {"use_kernels": False},
    "no-index": {"use_indexes": False, "use_kernels": False},
}


def _engine_families():
    original, _ = e3.programs()
    n = e3.SIZES[-1]
    fams = {f"e3-binary-tc-V{n}": (original, lambda n=n: e3.make_db(n))}
    for k in (0, 1, 2):
        fams[f"p5-arity-k{k}"] = (
            p5.program_with_payload(k),
            lambda k=k: p5.make_db(k),
        )
    return fams


def report_engine() -> None:
    """Kernel / interpreter / scan ablation; writes BENCH_engine.json.

    Every configuration of a family must reach the same fixpoint; a
    fact-count divergence is reported through the same gate as the
    optimizer regressions.
    """
    payload = {
        "_meta": {
            "configs": {
                name: (overrides or "engine defaults")
                for name, overrides in ENGINE_CONFIGS.items()
            },
            "note": "wall-clock is one warmed run on this machine; the "
            "work counters are deterministic and the quantities to "
            "diff across PRs",
        }
    }
    baseline = load_baseline(ENGINE_JSON)
    rows = []
    for family, (program, make_db) in _engine_families().items():
        payload[family] = {}
        fact_counts = {}
        times = {}
        for config, overrides in ENGINE_CONFIGS.items():
            db = make_db()  # fresh (cold) database per configuration
            opts = EngineOptions(**overrides)
            ms, res = timed(lambda p=program, d=db, o=opts: evaluate(p, d, o))
            times[config] = ms
            fact_counts[config] = res.stats.facts_derived
            payload[family][config] = {
                "wall_ms": round(ms, 3),
                **res.stats.as_dict(),
            }
            check_against_baseline(
                "engine", baseline, family, config, res.stats.facts_derived
            )
            rows.append([family, config, fmt(ms), res.stats.facts_derived,
                         res.stats.rows_scanned, res.stats.kernel_launches])
        for config in ("interpreter", "no-index"):
            check_no_extra_facts(
                "engine", f"kernel vs {config} on {family}",
                fact_counts["kernel"], fact_counts[config],
            )
        speedup = times["interpreter"] / max(times["kernel"], 1e-9)
        rows.append([family, "=> kernel speedup", f"x{speedup:.1f}", "", "", ""])
    with open(ENGINE_JSON, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    table(
        "ENGINE — compiled kernels vs interpreter vs scans",
        ["family", "config", "time", "facts", "rows scanned", "kernels"],
        rows,
    )
    print(f"(wrote {ENGINE_JSON.name})")


#: machine-readable columnar ablation, regenerated by report_columnar()
#: and committed so future data-plane PRs have a baseline to diff against
COLUMNAR_JSON = Path(__file__).parent / "BENCH_columnar.json"

#: the full ladder × index-mode matrix, run at sizes where even the
#: interpreter's no-index full scans finish promptly
COLUMNAR_ABLATION = {
    "interpreter": {"use_kernels": False, "use_columnar": False},
    "tuple-kernel": {"use_columnar": False},
    "columnar": {},
    "interpreter-noindex": {
        "use_kernels": False,
        "use_columnar": False,
        "use_indexes": False,
    },
    "tuple-kernel-noindex": {"use_columnar": False, "use_indexes": False},
    "columnar-noindex": {"use_indexes": False},
}

#: the headline comparison — columnar vs the tuple kernels it replaces
#: — at sizes where the frontier is wide enough to matter
COLUMNAR_SPEEDUP = {
    "tuple-kernel": {"use_columnar": False},
    "columnar": {},
}


def _columnar_families():
    tc = parse(col.TC_PROGRAM)
    sib = parse(col.SIBLING_PROGRAM)
    return {
        "tc-chain-V160": (tc, lambda: col.tc_db(160), COLUMNAR_ABLATION),
        "sibling-V100": (sib, lambda: col.sibling_db(100), COLUMNAR_ABLATION),
        "tc-chain-V1600": (tc, lambda: col.tc_db(1600), COLUMNAR_SPEEDUP),
        "sibling-V1200": (sib, lambda: col.sibling_db(1200), COLUMNAR_SPEEDUP),
    }


def _columnar_timed(fn):
    """Best of two measured runs after one warm-up: the speedup claim
    should not hinge on a single wall-clock sample."""
    ms1, res = timed(fn)
    t0 = time.perf_counter()
    fn()
    ms2 = (time.perf_counter() - t0) * 1000.0
    return min(ms1, ms2), res


def report_columnar() -> None:
    """Columnar / tuple-kernel / interpreter ablation across both index
    modes; writes BENCH_columnar.json.

    Every configuration of a family must reach the same fixpoint (the
    shared fact-count regression gate), and the large indexed families
    record the columnar-vs-tuple speedup the data plane exists for,
    summarized as a median so one noisy family cannot skew the
    headline number.
    """
    payload = {
        "_meta": {
            "configs": {
                name: (overrides or "engine defaults")
                for name, overrides in COLUMNAR_ABLATION.items()
            },
            "note": "wall-clock is one warmed run on this machine; the "
            "work counters are deterministic and the quantities to "
            "diff across PRs; *-V160/V100 run the full ladder x index "
            "matrix, the large families record the columnar speedup",
        }
    }
    baseline = load_baseline(COLUMNAR_JSON)
    rows = []
    headline = []
    for family, (program, make_db, configs) in _columnar_families().items():
        payload[family] = {}
        fact_counts = {}
        times = {}
        for config, overrides in configs.items():
            db = make_db()  # fresh (cold) database per configuration
            opts = EngineOptions(**overrides)
            ms, res = _columnar_timed(
                lambda p=program, d=db, o=opts: evaluate(p, d, o)
            )
            times[config] = ms
            fact_counts[config] = res.stats.facts_derived
            payload[family][config] = {
                "wall_ms": round(ms, 3),
                **res.stats.as_dict(),
            }
            check_against_baseline(
                "columnar", baseline, family, config, res.stats.facts_derived
            )
            rows.append([family, config, fmt(ms), res.stats.facts_derived,
                         res.stats.batch_probes, res.stats.columnar_fallbacks])
        for config in configs:
            if config != "columnar":
                check_no_extra_facts(
                    "columnar", f"columnar vs {config} on {family}",
                    fact_counts["columnar"], fact_counts[config],
                )
        speedup = times["tuple-kernel"] / max(times["columnar"], 1e-9)
        payload[family]["columnar_speedup_vs_tuple"] = round(speedup, 2)
        if configs is COLUMNAR_SPEEDUP:
            headline.append(speedup)
        rows.append([family, "=> columnar speedup", f"x{speedup:.1f}", "", "", ""])
    headline.sort()
    median = (
        headline[len(headline) // 2]
        if len(headline) % 2
        else (headline[len(headline) // 2 - 1] + headline[len(headline) // 2]) / 2
    )
    payload["_meta"]["median_speedup_vs_tuple"] = round(median, 2)
    with open(COLUMNAR_JSON, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    table(
        "COLUMNAR — batch data plane vs tuple kernels vs interpreter",
        ["family", "config", "time", "facts", "batch probes", "fallbacks"],
        rows,
    )
    print(f"(median speedup vs tuple kernels: x{median:.2f})")
    print(f"(wrote {COLUMNAR_JSON.name})")


#: machine-readable scheduler ablation, regenerated by report_scheduler()
SCHEDULER_JSON = Path(__file__).parent / "BENCH_scheduler.json"

#: monolithic stratum loop (--no-scc) vs SCC scheduling vs SCC with a
#: 4-thread pool for same-depth units (--parallel 4)
SCHEDULER_CONFIGS = {
    "monolithic": {"use_scc": False},
    "scc": {},
    "scc-parallel": {"parallel": 4},
}


def report_scheduler() -> None:
    """Monolithic / SCC / SCC+parallel ablation; writes BENCH_scheduler.json.

    Every configuration of a workload must reach the same fixpoint; a
    fact-count divergence is reported through the same gate as the
    optimizer regressions.  Wall-clock for the parallel configuration
    is honest for *this* machine (core count recorded in the metadata):
    the scheduler's thread pool only helps when sibling units can run
    on distinct cores, and pure-Python joins serialize on the GIL, so
    the deterministic work counters are the portable quantities.
    """
    import os

    n = sched.SIZES[-1]
    workloads = {
        f"{name}-n{n}": (make_program(), lambda mk=make_db: mk(n))
        for name, (make_program, make_db) in sched.WORKLOADS.items()
    }
    payload = {
        "_meta": {
            "configs": {
                name: (overrides or "engine defaults")
                for name, overrides in SCHEDULER_CONFIGS.items()
            },
            "cpu_count": os.cpu_count(),
            "note": "wall-clock is one warmed run on this machine; "
            "scc-parallel wall-clock needs multiple cores (and a "
            "GIL-free interpreter) to beat scc, so the work counters "
            "are the quantities to diff across PRs",
        }
    }
    baseline = load_baseline(SCHEDULER_JSON)
    rows = []
    for family, (program, make_db) in workloads.items():
        payload[family] = {}
        fact_counts = {}
        join_work = {}
        for config, overrides in SCHEDULER_CONFIGS.items():
            db = make_db()  # fresh (cold) database per configuration
            opts = EngineOptions(**overrides)
            ms, res = timed(lambda p=program, d=db, o=opts: evaluate(p, d, o))
            fact_counts[config] = res.stats.facts_derived
            join_work[config] = res.stats.join_work
            payload[family][config] = {
                "wall_ms": round(ms, 3),
                **res.stats.as_dict(),
            }
            check_against_baseline(
                "scheduler", baseline, family, config, res.stats.facts_derived
            )
            rows.append([
                family, config, fmt(ms), res.stats.iterations,
                res.stats.join_work, res.stats.units_scheduled,
                res.stats.units_parallel,
            ])
        for config in ("scc", "scc-parallel"):
            check_no_extra_facts(
                "scheduler", f"{config} vs monolithic on {family}",
                fact_counts[config], fact_counts["monolithic"],
            )
        ratio = join_work["monolithic"] / max(1, join_work["scc"])
        rows.append([family, "=> scc join-work win", f"x{ratio:.1f}", "", "", "", ""])
    with open(SCHEDULER_JSON, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    table(
        "SCHED — SCC scheduling vs the monolithic stratum loop",
        ["workload", "config", "time", "iters", "join work", "units", "parallel"],
        rows,
    )
    print(f"(wrote {SCHEDULER_JSON.name})")


#: machine-readable governor-overhead measurement, regenerated by
#: report_governor()
GOVERNOR_JSON = Path(__file__).parent / "BENCH_governor.json"

#: the governed configuration arms every limit far above what the
#: workloads need, so every checkpoint runs its full check path but no
#: limit ever trips — the worst case for pure bookkeeping overhead
GOVERNOR_LIMITS = {
    "deadline_s": 3600.0,
    "max_facts": 10**12,
    "max_delta_rows": 10**12,
    "max_iterations": 10**9,
    "max_unit_iterations": 10**9,
}

GOVERNOR_CONFIGS = {
    "ungoverned": {},
    "governed-unhit": dict(GOVERNOR_LIMITS),
}


def report_governor() -> None:
    """Resource-governor overhead; writes BENCH_governor.json.

    Measures the scheduler workloads with no limits vs every limit set
    but never hit (the cost of the checkpoints themselves).  The target
    is <3% wall-clock overhead.  The difference being measured is a few
    hundred microseconds, so the harness is stricter than the other
    reports: trials are *interleaved* (ungoverned, governed,
    ungoverned, ...) with the per-config minimum taken, the cyclic
    garbage collector is paused during timing (a collection landing in
    one arm of a pair would swamp the difference), and statistics are
    harvested from separate untimed runs so the timed region retains
    nothing.  Answers must be bit-identical — a governed run that
    derives a different fact count is reported through the regression
    gate.
    """
    import gc

    TRIALS = 25

    n = sched.SIZES[-1]
    workloads = {
        f"{name}-n{n}": (make_program(), lambda mk=make_db: mk(n))
        for name, (make_program, make_db) in sched.WORKLOADS.items()
    }
    payload = {
        "_meta": {
            "limits": GOVERNOR_LIMITS,
            "note": "wall-clock is min-of-5 warmed runs on this machine; "
            "overhead_pct is governed-unhit vs ungoverned — the cost of "
            "cooperative checkpoints when no limit trips",
        }
    }
    rows = []
    overheads = []
    for family, (program, make_db) in workloads.items():
        payload[family] = {}
        times = {name: float("inf") for name in GOVERNOR_CONFIGS}
        facts = {}
        results = {}
        opts_by_config = {
            name: EngineOptions(**overrides)
            for name, overrides in GOVERNOR_CONFIGS.items()
        }
        for config, opts in opts_by_config.items():  # warm both paths
            evaluate(program, make_db(), opts)
        gc.collect()
        gc.disable()
        try:
            for _ in range(TRIALS):
                for config, opts in opts_by_config.items():
                    db = make_db()  # fresh (cold) database per trial
                    start = time.perf_counter()
                    evaluate(program, db, opts)
                    times[config] = min(
                        times[config], (time.perf_counter() - start) * 1000.0
                    )
        finally:
            gc.enable()
            gc.collect()
        for config, opts in opts_by_config.items():  # untimed stats run
            results[config] = evaluate(program, make_db(), opts)
        for config, res in results.items():
            facts[config] = res.stats.facts_derived
            payload[family][config] = {
                "wall_ms": round(times[config], 3),
                **res.stats.as_dict(),
            }
            rows.append([
                family, config, fmt(times[config]), res.stats.facts_derived,
                res.stats.governor_checks,
            ])
        # the governed run must reach the identical fixpoint (both
        # directions: neither more nor fewer facts)
        check_no_extra_facts(
            "governor", f"governed-unhit on {family}",
            facts["governed-unhit"], facts["ungoverned"],
        )
        check_no_extra_facts(
            "governor", f"ungoverned on {family} (governed lost facts)",
            facts["ungoverned"], facts["governed-unhit"],
        )
        overhead = (times["governed-unhit"] / max(times["ungoverned"], 1e-9) - 1.0) * 100.0
        overheads.append((times["ungoverned"], times["governed-unhit"]))
        payload[family]["overhead_pct"] = round(overhead, 2)
        rows.append([family, "=> overhead", f"{overhead:+.1f}%", "", ""])
    # runtime-weighted aggregate: per-workload percentages on sub-ms
    # workloads swing with scheduler noise; total-time ratio is the
    # stable quantity
    total_plain = sum(p for p, _ in overheads)
    total_gov = sum(g for _, g in overheads)
    aggregate = (total_gov / max(total_plain, 1e-9) - 1.0) * 100.0
    payload["_meta"]["aggregate_overhead_pct"] = round(aggregate, 2)
    with open(GOVERNOR_JSON, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    table(
        "GOV — governor overhead (limits armed, never hit)",
        ["workload", "config", "time", "facts", "checks"],
        rows,
    )
    print(
        f"aggregate overhead {aggregate:+.1f}% "
        f"({total_gov:.1f} ms governed vs {total_plain:.1f} ms ungoverned; target < 3%)"
    )
    print(f"(wrote {GOVERNOR_JSON.name})")


#: machine-readable incremental-vs-scratch measurement, regenerated by
#: report_incremental()
INCREMENTAL_JSON = Path(__file__).parent / "BENCH_incremental.json"

#: the acceptance floor, on *work*: a 1%-update batch must do at least
#: this factor less join work than a from-scratch re-evaluation.  The
#: measured ratios sit between ~9x (siblings retract, where DRed
#: overdeletes and rederives) and ~480x, so 5x has headroom without
#: being vacuous — and unlike wall-clock it cannot flake with the
#: machine.
INCREMENTAL_MIN_WORK_RATIO = 5.0

#: the wall-clock expectation (informational only — see WARNINGS)
INCREMENTAL_MIN_SPEEDUP = 5.0


def report_incremental() -> None:
    """Incremental maintenance vs from-scratch on 1%-update workloads;
    writes BENCH_incremental.json.

    For each workload and update direction, the from-scratch column
    re-evaluates the program over the *updated* EDB; the incremental
    column applies the same batch to an already-materialized
    :class:`IncrementalSession` (session construction excluded — that
    cost is the one-off the session exists to amortize, and the
    prepared-program cache makes repeat constructions cheap anyway).
    Both sides must land on identical fact sets, checked per run.

    The acceptance floor is on join work: the incremental batch must
    do at least ``INCREMENTAL_MIN_WORK_RATIO`` times less join work
    than the from-scratch run — a machine-independent gate through the
    same violation channel as the fact-count regressions.  The x5
    wall-clock speedup is reported as an informational warning only:
    on a loaded or slow-I/O CI box the wall ratio flakes while the
    work ratio cannot.
    """
    from repro.datalog import Database
    from repro.engine import IncrementalSession

    payload = {
        "_meta": {
            "note": "wall_ms_* are one warmed run on this machine; the "
            "speedup is informational; the acceptance gate is the "
            "join-work ratio.  Update batches are ~1% of the base EDB.",
            "min_speedup_informational": INCREMENTAL_MIN_SPEEDUP,
            "min_work_ratio": INCREMENTAL_MIN_WORK_RATIO,
        }
    }
    baseline = load_baseline(INCREMENTAL_JSON)
    rows = []
    for family, wl in ivm.WORKLOADS.items():
        payload[family] = {}
        for kind in ("insert", "retract"):
            updated = wl.updated_rows(kind)
            scratch_db = Database.from_dict(
                {p: sorted(r) for p, r in updated.items() if r}
            )
            ms_scratch, scratch = timed(
                lambda d=scratch_db: evaluate(wl.program, d)
            )

            def maintained():
                session = IncrementalSession(wl.program, wl.make_db())
                batch = wl.batch(kind)
                start = time.perf_counter()
                if kind == "insert":
                    session.insert(batch)
                else:
                    session.retract(batch)
                return (time.perf_counter() - start) * 1000.0, session

            maintained()  # warm-up (indexes, kernels, prepared cache)
            ms_inc, session = maintained()
            for pred in wl.program.idb_predicates():
                assert session.facts(pred) == scratch.db.rows(pred), (
                    f"incremental diverged from scratch on {family}/{kind}: "
                    f"{pred}"
                )
            speedup = ms_scratch / max(ms_inc, 1e-6)
            stats = session.last_stats
            work_ratio = scratch.stats.join_work / max(1, stats.join_work)
            if work_ratio < INCREMENTAL_MIN_WORK_RATIO:
                VIOLATIONS.append(
                    f"incremental: {family}/{kind} join-work ratio "
                    f"x{work_ratio:.1f} is below the "
                    f"x{INCREMENTAL_MIN_WORK_RATIO:.0f} acceptance floor"
                )
            if speedup < INCREMENTAL_MIN_SPEEDUP:
                warn(
                    f"incremental: {family}/{kind} wall-clock speedup "
                    f"x{speedup:.1f} is below the informational "
                    f"x{INCREMENTAL_MIN_SPEEDUP:.0f} expectation "
                    f"(work ratio x{work_ratio:.1f} is the gate)"
                )
            payload[family][kind] = {
                "wall_ms_incremental": round(ms_inc, 3),
                "wall_ms_scratch": round(ms_scratch, 3),
                "speedup": round(speedup, 2),
                "work_ratio": round(work_ratio, 2),
                "join_work_scratch": scratch.stats.join_work,
                **stats.as_dict(),
            }
            check_against_baseline(
                "incremental", baseline, family, kind, stats.facts_derived
            )
            rows.append([
                family, kind, fmt(ms_scratch), fmt(ms_inc),
                f"x{speedup:.1f}", f"x{work_ratio:.0f}",
                stats.facts_derived,
                stats.facts_retracted, stats.facts_rederived,
                f"{stats.units_reactivated}/{stats.units_scheduled}",
            ])
    with open(INCREMENTAL_JSON, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    table(
        "IVM — incremental maintenance vs from-scratch (1% updates)",
        ["workload", "update", "scratch", "incremental", "speedup",
         "work win", "derived", "retracted", "rederived", "units"],
        rows,
    )
    print(f"(wrote {INCREMENTAL_JSON.name})")


#: machine-readable planner ablation, regenerated by report_planner()
PLANNER_JSON = Path(__file__).parent / "BENCH_planner.json"

#: greedy heuristic vs the bound-driven DP planner vs the planner with
#: the adaptive replanner at its most aggressive cadence
PLANNER_CONFIGS = {
    "greedy": {"use_cost_planner": False},
    "cost": {},
    "cost-replan": {"replan_rounds": 1},
}


def report_planner() -> None:
    """Greedy vs cost-based join ordering; writes BENCH_planner.json.

    Every configuration of a workload must reach the same fixpoint
    with the same answers — join order is a pure work optimization.
    On the skewed families (``fanout-trap``, ``skew-star``) the cost
    planner must cut join work at least 3x below greedy; on the
    parity control it must stay within 10% of greedy.  Both gates
    report through the same violation channel as the fact-count
    regressions, so a planner that silently degrades fails the build.
    """
    payload = {
        "_meta": {
            "configs": {
                name: (overrides or "engine defaults")
                for name, overrides in PLANNER_CONFIGS.items()
            },
            "note": "join_work = rows_scanned + index_probes; the 3x "
            "gate applies to the skewed families, the 1.1x parity "
            "gate to the control — wall-clock is one warmed run",
        }
    }
    baseline = load_baseline(PLANNER_JSON)
    rows = []
    for family, (make_program, make_db) in sorted(plan.WORKLOADS.items()):
        program = make_program()
        payload[family] = {}
        join_work = {}
        fact_counts = {}
        for config, overrides in PLANNER_CONFIGS.items():
            db = make_db()  # fresh (cold) database per configuration
            opts = EngineOptions(**overrides)
            ms, res = timed(lambda p=program, d=db, o=opts: evaluate(p, d, o))
            join_work[config] = res.stats.join_work
            fact_counts[config] = res.stats.facts_derived
            payload[family][config] = {
                "wall_ms": round(ms, 3),
                **res.stats.as_dict(),
            }
            check_against_baseline(
                "planner", baseline, family, config, res.stats.facts_derived
            )
            rows.append([
                family, config, fmt(ms), res.stats.join_work,
                res.stats.plans_costed, res.stats.replans,
                f"{res.stats.bound_overestimate_max:.1f}",
            ])
        for config in ("cost", "cost-replan"):
            check_no_extra_facts(
                "planner", f"{config} vs greedy on {family}",
                fact_counts[config], fact_counts["greedy"],
            )
            if fact_counts[config] != fact_counts["greedy"]:
                VIOLATIONS.append(
                    f"planner: {config} on {family} derived "
                    f"{fact_counts[config]} facts vs "
                    f"{fact_counts['greedy']} under greedy"
                )
        ratio = join_work["greedy"] / max(1, join_work["cost"])
        if family in plan.SKEWED and ratio < 3.0:
            VIOLATIONS.append(
                f"planner: cost join-work win on skewed family "
                f"{family} is only x{ratio:.2f} (gate: >= x3)"
            )
        if family not in plan.SKEWED and ratio < 1 / 1.1:
            VIOLATIONS.append(
                f"planner: cost join work on parity family {family} "
                f"is x{1 / ratio:.2f} greedy's (gate: <= x1.1)"
            )
        rows.append([
            family, "=> cost join-work win", f"x{ratio:.1f}", "", "", "", "",
        ])
    with open(PLANNER_JSON, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    table(
        "PLAN — bound-driven cost planner vs the greedy heuristic",
        ["workload", "config", "time", "join work", "plans", "replans",
         "overest"],
        rows,
    )
    print(f"(wrote {PLANNER_JSON.name})")


#: machine-readable durability measurement, regenerated by
#: report_durability()
DURABILITY_JSON = Path(__file__).parent / "BENCH_durability.json"

#: informational wall expectations (see WARNINGS): WAL overhead per
#: batch at fsync=batch, and recovery speedup over from-scratch at a
#: ~1% replay tail
WAL_MAX_OVERHEAD = 1.10
RECOVERY_MIN_SPEEDUP = 5.0

#: the hard gate for recovery: replaying the ~1% tail must do at least
#: this factor less join work than evaluating the final database from
#: scratch (snapshot load does no joins, so the recovered session's
#: counters are pure replay work)
RECOVERY_MIN_WORK_RATIO = 5.0


def report_durability() -> None:
    """WAL overhead and recovery-vs-scratch; writes BENCH_durability.json.

    **Overhead**: the same update script through a plain and a durable
    session (``fsync=batch``, snapshots off) — the hard gate is that
    the work counters and fact sets are identical (logging must not
    change evaluation); wall overhead beyond ~10% is an informational
    warning.  ``fsync=always`` and ``off`` are measured for the table
    but ungated: their cost is the filesystem's, not the engine's.

    **Recovery**: a checkpoint anchors all but the script's final ~1%;
    recovery (snapshot load + tail replay) is compared against
    evaluating the final database from scratch.  Hard gates: the
    recovered fact sets match scratch exactly, and the replay join
    work times the acceptance factor stays below scratch join work.
    The >= 5x wall speedup is informational.
    """
    import os
    import tempfile

    from repro.datalog import Database
    from repro.engine import DurabilityConfig, IncrementalSession, recover

    payload = {
        "_meta": {
            "note": "hard gates are on work counters (identical work "
            "under logging; replay work x"
            f"{RECOVERY_MIN_WORK_RATIO:.0f} below scratch); wall "
            "overhead and recovery speedup are informational",
            "wal_max_overhead_informational": WAL_MAX_OVERHEAD,
            "recovery_min_speedup_informational": RECOVERY_MIN_SPEEDUP,
            "recovery_min_work_ratio": RECOVERY_MIN_WORK_RATIO,
        }
    }
    overhead_rows = []
    recovery_rows = []

    def run_script(wl, config):
        session = IncrementalSession(
            wl.program, wl.make_db(), durable=config
        )
        start = time.perf_counter()
        for kind, batch in wl.script:
            if kind == "insert":
                session.insert(batch)
            else:
                session.retract(batch)
        ms = (time.perf_counter() - start) * 1000.0
        return ms, session

    for family, wl in dur.WORKLOADS.items():
        payload[family] = {}
        with tempfile.TemporaryDirectory() as d:

            def cfg(name, fsync):
                return DurabilityConfig(
                    wal_path=os.path.join(d, f"{name}.wal"),
                    fsync=fsync,
                    snapshot_every=0,
                )

            run_script(wl, None)  # warm-up (indexes, kernels, caches)
            ms_plain, plain = run_script(wl, None)
            configs = {
                "fsync=batch": cfg("batch", "batch"),
                "fsync=always": cfg("always", "always"),
                "fsync=off": cfg("off", "off"),
            }
            for label, config in configs.items():
                ms_durable, durable = run_script(wl, config)
                overhead = ms_durable / max(ms_plain, 1e-6)
                if durable.stats.join_work != plain.stats.join_work:
                    VIOLATIONS.append(
                        f"durability: {family} {label} changed join work "
                        f"({durable.stats.join_work} vs "
                        f"{plain.stats.join_work} plain) — logging must "
                        f"not change evaluation"
                    )
                for pred in wl.program.idb_predicates():
                    if durable.facts(pred) != plain.facts(pred):
                        VIOLATIONS.append(
                            f"durability: {family} {label} diverged from "
                            f"the plain session on {pred}"
                        )
                if label == "fsync=batch" and overhead > WAL_MAX_OVERHEAD:
                    warn(
                        f"durability: {family} WAL overhead at "
                        f"fsync=batch is x{overhead:.2f} (informational "
                        f"expectation <= x{WAL_MAX_OVERHEAD:.2f})"
                    )
                payload[family][label] = {
                    "wall_ms_plain": round(ms_plain, 3),
                    "wall_ms_durable": round(ms_durable, 3),
                    "overhead": round(overhead, 3),
                    "wal_bytes": os.path.getsize(config.wal_path),
                    **durable.stats.as_dict(),
                }
                overhead_rows.append([
                    family, label, fmt(ms_plain), fmt(ms_durable),
                    f"x{overhead:.2f}", durable.stats.wal_appends,
                    os.path.getsize(config.wal_path),
                ])
                durable.close()

            # recovery: checkpoint before the final ~1% of batches
            config = cfg("recover", "batch")
            tail = max(1, len(wl.script) // 100)
            session = IncrementalSession(
                wl.program, wl.make_db(), durable=config
            )
            for kind, batch in wl.script[:-tail]:
                getattr(session, kind)(batch)
            session.checkpoint()
            for kind, batch in wl.script[-tail:]:
                getattr(session, kind)(batch)
            session.close()

            final_db = Database.from_dict(
                {p: sorted(r) for p, r in wl.final_rows().items() if r}
            )
            ms_scratch, scratch = timed(
                lambda d=final_db, p=wl.program: evaluate(p, d)
            )
            start = time.perf_counter()
            recovered, rec_report = recover(wl.program, config)
            ms_recover = (time.perf_counter() - start) * 1000.0
            for pred in wl.program.idb_predicates():
                if recovered.facts(pred) != scratch.db.rows(pred):
                    VIOLATIONS.append(
                        f"durability: {family} recovery diverged from "
                        f"scratch on {pred}"
                    )
            replay_work = recovered.stats.join_work
            work_ratio = scratch.stats.join_work / max(1, replay_work)
            speedup = ms_scratch / max(ms_recover, 1e-6)
            if work_ratio < RECOVERY_MIN_WORK_RATIO:
                VIOLATIONS.append(
                    f"durability: {family} recovery join-work ratio "
                    f"x{work_ratio:.1f} is below the "
                    f"x{RECOVERY_MIN_WORK_RATIO:.0f} acceptance floor"
                )
            if speedup < RECOVERY_MIN_SPEEDUP:
                warn(
                    f"durability: {family} recovery speedup x{speedup:.1f} "
                    f"is below the informational "
                    f"x{RECOVERY_MIN_SPEEDUP:.0f} expectation "
                    f"(work ratio x{work_ratio:.1f} is the gate)"
                )
            payload[family]["recovery"] = {
                "wall_ms_scratch": round(ms_scratch, 3),
                "wall_ms_recover": round(ms_recover, 3),
                "speedup": round(speedup, 2),
                "work_ratio": round(work_ratio, 2),
                "join_work_scratch": scratch.stats.join_work,
                "join_work_replay": replay_work,
                "replayed_batches": rec_report.replayed_batches,
                "snapshot_seq": rec_report.snapshot_seq,
                "source": rec_report.source,
            }
            recovery_rows.append([
                family, fmt(ms_scratch), fmt(ms_recover),
                f"x{speedup:.1f}", f"x{work_ratio:.0f}",
                rec_report.replayed_batches, rec_report.source,
            ])
            recovered.close()

    with open(DURABILITY_JSON, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    table(
        "DUR — WAL overhead per update script (snapshots off)",
        ["workload", "policy", "plain", "durable", "overhead",
         "appends", "wal bytes"],
        overhead_rows,
    )
    table(
        "DUR — recovery (snapshot + ~1% replay tail) vs from-scratch",
        ["workload", "scratch", "recover", "speedup", "work win",
         "replayed", "source"],
        recovery_rows,
    )
    print(f"(wrote {DURABILITY_JSON.name})")


REPORTS = {
    "e2": report_e2,
    "e3": report_e3,
    "e6": report_e6,
    "e12": report_e12,
    "p4": report_p4,
    "p5": report_p5,
    "td": report_td,
    "ix": report_ix,
    "engine": report_engine,
    "columnar": report_columnar,
    "planner": report_planner,
    "scheduler": report_scheduler,
    "governor": report_governor,
    "incremental": report_incremental,
    "durability": report_durability,
}


def main(argv: list[str]) -> int:
    chosen = [a.lower() for a in argv] or list(REPORTS)
    unknown = [c for c in chosen if c not in REPORTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; known: {sorted(REPORTS)}", file=sys.stderr)
        return 2
    VIOLATIONS.clear()
    WARNINGS.clear()
    for c in chosen:
        REPORTS[c]()
    if WARNINGS:
        print(file=sys.stderr)
        for w in WARNINGS:
            print(f"warning (informational): {w}", file=sys.stderr)
    if VIOLATIONS:
        print(file=sys.stderr)
        for v in VIOLATIONS:
            print(f"FACT-COUNT REGRESSION: {v}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
