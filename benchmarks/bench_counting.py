"""Experiment P4b — Counting vs Magic Sets on bound same-generation.

The paper names Counting alongside Magic Sets as the selection-pushing
rewritings its projection framework complements.  On the classic
bound-source same-generation query over tree-shaped data (counting's
soundness domain), counting memoizes only the recursion *depth* while
magic memoizes the reachable *node set* — the textbook trade-off.

Expected shape: both rewritings beat the unrestricted original by a
growing factor; their relative order depends on fan-out (depth count
vs. node count), and all three agree on the answers.
"""

import pytest

from repro.datalog import Database, parse
from repro.engine import evaluate
from repro.rewriting import counting, evaluate_counting, magic_sets
from repro.workloads.graphs import tree

SIZES = [200, 800]


def program():
    return parse(
        """
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        sg(X, Y) :- flat(X, Y).
        ?- sg(1, Y).
        """
    )


def make_db(n, seed=5):
    import random

    rng = random.Random(seed)
    parent_child = tree(n, fanout=3)
    up = [(child, parent) for parent, child in parent_child]
    down = parent_child
    flat = sorted({(rng.randrange(n), rng.randrange(n)) for _ in range(n // 2)})
    return Database.from_dict({"up": up, "down": down, "flat": flat})


@pytest.mark.parametrize("n", SIZES)
def test_sg_original(benchmark, n):
    db = make_db(n)
    benchmark.group = f"counting n={n}"
    benchmark(lambda: evaluate(program(), db))


@pytest.mark.parametrize("n", SIZES)
def test_sg_magic(benchmark, n):
    db = make_db(n)
    rewritten = magic_sets(program())
    benchmark.group = f"counting n={n}"
    result = benchmark(lambda: evaluate(rewritten.program, db))
    assert result.answers() == evaluate(program(), db).answers()


@pytest.mark.parametrize("n", SIZES)
def test_sg_counting(benchmark, n):
    db = make_db(n)
    rewritten = counting(program())
    # depth bound: tree height, generously the node count's log... use
    # a safe small bound derived from the tree shape
    benchmark.group = f"counting n={n}"
    result = benchmark(lambda: evaluate_counting(rewritten, db, max_depth=32))
    reference = evaluate(program(), db)
    assert result.answers() == reference.answers()
    assert result.stats.facts_derived < reference.stats.facts_derived
