"""Ablation — compile-time cost of each optimizer phase.

DESIGN.md calls out the pipeline's phase structure; this bench measures
what each phase costs at compile time on the paper's example programs,
so the run-time wins of the other benches can be weighed against the
one-off optimization cost.  The deletion phase dominates (it runs chase
fixpoints); adornment, component splitting and projection are linear
passes.
"""

import pytest

from repro.core import adorn, delete_rules, push_projections
from repro.core.components import split_components
from repro.core.pipeline import optimize
from repro.workloads.paper_examples import (
    example1_program,
    example2_program,
    example5_program,
    example7_adorned,
)

PROGRAMS = {
    "example1": example1_program,
    "example2": example2_program,
    "example5": example5_program,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_phase_adorn(benchmark, name):
    program = PROGRAMS[name]()
    benchmark.group = f"compile {name}"
    benchmark(lambda: adorn(program))


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_phase_split_and_project(benchmark, name):
    adorned = adorn(PROGRAMS[name]())
    benchmark.group = f"compile {name}"
    benchmark(lambda: push_projections(split_components(adorned).program))


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_phase_deletion(benchmark, name):
    projected = push_projections(split_components(adorn(PROGRAMS[name]())).program)
    benchmark.group = f"compile {name}"
    benchmark(lambda: delete_rules(projected))


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_full_pipeline_compile(benchmark, name):
    program = PROGRAMS[name]()
    benchmark.group = f"compile {name}"
    benchmark(lambda: optimize(program))


def test_summary_machinery_on_example7(benchmark):
    """Lemma 5.1/5.3 on the paper's most intricate example."""
    program = example7_adorned()
    benchmark.group = "compile example7"
    benchmark(
        lambda: delete_rules(
            program, method="lemma53", use_chase=False, use_sagiv=False
        )
    )
