"""Experiment P4 — orthogonality with Magic Sets (sections 1 and 3).

The paper: selection pushing (Magic Sets) and projection pushing are
complementary, and "the trimmed adorned program can be further
transformed using rewriting algorithms such as Magic Sets".  Workload:
reachability from a bound source with an existential payload column —
selections restrict *which* nodes are explored, projections *what* is
carried per node.

Configurations: original / existential-optimized / magic-only /
existential-then-magic.  Expected shape: each rewriting helps on its
own axis, the composition beats either alone, and all four agree on
the answers.
"""

import pytest

from repro.core.pipeline import optimize
from repro.datalog import Database, parse
from repro.engine import EngineOptions, evaluate
from repro.rewriting import magic_sets
from repro.workloads.graphs import layered_dag

SIZES = [(8, 10), (10, 16)]  # (layers, width)
TAGS = 12


def program():
    return parse(
        """
        reach(X, Y, T) :- edge(X, Y), tag(Y, T).
        reach(X, Y, T) :- edge(X, Z), reach(Z, Y, T).
        ?- reach(0, Y, _).
        """
    )


def make_db(layers, width, seed=0):
    edges = layered_dag(layers, width, fanout=3, seed=seed)
    nodes = {n for e in edges for n in e}
    return Database.from_dict(
        {"edge": edges, "tag": [(n, n % TAGS) for n in sorted(nodes)]}
    )


def configurations():
    base = program()
    opt = optimize(base)
    magic_only = magic_sets(base)
    composed = magic_sets(opt.program)
    return {
        "original": (base, EngineOptions()),
        "existential": (opt.program, opt.engine_options()),
        "magic": (magic_only.program, EngineOptions()),
        "existential+magic": (composed.program, opt.engine_options()),
    }


@pytest.mark.parametrize("layers,width", SIZES)
@pytest.mark.parametrize(
    "config", ["original", "existential", "magic", "existential+magic"]
)
def test_magic_composition(benchmark, layers, width, config):
    prog, options = configurations()[config]
    db = make_db(layers, width)
    benchmark.group = f"magic layers={layers} width={width}"
    result = benchmark(lambda: evaluate(prog, db, options))

    if config == "existential+magic":
        configs = configurations()
        reference = {
            t[0] for t in evaluate(configs["original"][0], db).answers()
        }
        assert {t[0] for t in result.answers()} == reference
        stats = {
            name: evaluate(p, db, o).stats for name, (p, o) in configs.items()
        }
        # composition derives no more facts than either single rewriting
        assert (
            stats["existential+magic"].facts_derived
            <= stats["existential"].facts_derived
        )
        assert (
            stats["existential+magic"].facts_derived
            <= stats["magic"].facts_derived
        )
        assert (
            stats["existential+magic"].facts_derived
            < stats["original"].facts_derived
        )
