"""Ablation — compile-time cost vs. power of the deletion engines.

Algorithm 5.2's summary tests are meant to be *cheap* (finite summary
saturation, no evaluation); Sagiv's test and the Example-6 chase each
run fixpoint evaluations per candidate.  This bench measures, per
method, what a full deletion pass costs on the paper's example programs
and how many rules it removes — the price/power table behind the
pipeline's cheapest-first ordering.
"""

import pytest

from repro.core import delete_rules
from repro.workloads.paper_examples import (
    adorned_from_text,
    example5_adorned_text,
    example7_adorned,
    example8_adorned,
    example10_adorned,
)

PROGRAMS = {
    "example5": lambda: adorned_from_text(example5_adorned_text()),
    "example7": example7_adorned,
    "example8": example8_adorned,
    "example10": example10_adorned,
}

METHODS = {
    "summaries51": dict(method="lemma51", use_chase=False, use_sagiv=False),
    "summaries53": dict(method="lemma53", use_chase=False, use_sagiv=False),
    "sagiv": dict(method="lemma53", use_chase=False, use_sagiv=True),
    "full(chase)": dict(method="lemma53", use_chase=True, use_sagiv=True),
}

# how many rules each method is expected to delete (including cascade),
# pinned so power regressions fail the bench
EXPECTED = {
    ("example5", "summaries51"): 0,
    ("example5", "summaries53"): 0,
    ("example5", "sagiv"): 0,
    ("example5", "full(chase)"): 3,
    ("example7", "summaries51"): 4,
    ("example7", "summaries53"): 4,
    ("example10", "summaries51"): 0,
    ("example10", "summaries53"): 2,
}


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
@pytest.mark.parametrize("method_name", sorted(METHODS))
def test_deletion_method(benchmark, program_name, method_name):
    make = PROGRAMS[program_name]
    options = METHODS[method_name]
    benchmark.group = f"deletion {program_name}"

    report = benchmark(lambda: delete_rules(make(), **options))

    expected = EXPECTED.get((program_name, method_name))
    if expected is not None:
        assert report.count == expected, (program_name, method_name)
    # monotone power: the full engine never deletes less than summaries
    if method_name == "full(chase)":
        weakest = delete_rules(make(), **METHODS["summaries51"])
        assert report.count >= weakest.count
