"""Experiment P1 — "the final program will perform at least as well as
the original program, and ... often perform significantly better"
(section 2).

A sweep of the full pipeline over the paper's program families ×
database sizes.  For every cell we assert the direction of the claim on
the engine's work counters (never more facts derived, up to the
engine's seeding of empty relations) and let pytest-benchmark record
the wall-clock ratio.
"""

import pytest

from harness import Workload, measure

from repro.core.pipeline import optimize
from repro.datalog import parse
from repro.engine import evaluate
from repro.workloads.edb import random_edb

FAMILIES = {
    "tc-sources": """
        query(X) :- a(X, Y).
        a(X, Y) :- p(X, Z), a(Z, Y).
        a(X, Y) :- p(X, Y).
        ?- query(X).
    """,
    "left-linear": """
        a(X, Y) :- a(X, Z), p(Z, Y).
        a(X, Y) :- p(X, Y).
        ?- a(X, _).
    """,
    "same-gen-sources": """
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        ?- sg(X, _).
    """,
    "guarded": """
        q(X) :- item(X, Y), witness(U, V), mark(V).
        witness(U, V) :- link(U, V).
        witness(U, V) :- link(U, W), witness(W, V).
        ?- q(X).
    """,
}

SIZES = [60, 120]


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("rows", SIZES)
def test_pipeline_original(benchmark, family, rows):
    program = parse(FAMILIES[family])
    db = random_edb(program, rows=rows, domain=rows // 3, seed=17)
    benchmark.group = f"pipeline {family} rows={rows}"
    benchmark(lambda: evaluate(program, db))


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("rows", SIZES)
def test_pipeline_optimized(benchmark, family, rows):
    program = parse(FAMILIES[family])
    result = optimize(program)
    db = random_edb(program, rows=rows, domain=rows // 3, seed=17)
    benchmark.group = f"pipeline {family} rows={rows}"
    bench_result = benchmark(lambda: result.evaluate(db))
    assert result.answers(db) == result.reference_answers(db)
    original = measure(Workload(f"{family}-original", program, db))
    # "at least as well": never more total derivation work.  (Raw fact
    # counts can tick up slightly when adornment creates two query
    # forms of one predicate; the paper's claim is about work, which
    # derivations = facts + duplicate attempts measures.)
    assert bench_result.stats.derivations <= original.derivations
    assert bench_result.stats.rule_firings <= original.rule_firings
