"""Experiment E2/P3 — boolean subqueries and the bottom-up cut
(Example 2 and the section-3.1 claim).

The claim: once a boolean subquery ``B_i`` has been shown true, "the
rule defining it need not be used further" — retiring it removes its
join work from every subsequent fixpoint iteration.

Workload: the guard is an existence check ``path(U, V), big(V, W)``
where ``big`` is a wide relation.  The recursive ``path`` keeps
producing deltas for ~n iterations, and without the cut every delta is
re-joined against ``big`` long after the guard has already succeeded.
Three configurations:

- ``original``: guard literals inline in the query rule;
- ``split``: phase-1 rewriting, boolean rules evaluated like any other;
- ``split+cut``: boolean rules retired once true (the paper's cut).

Expected shape: split+cut < split < original in join work and
wall-clock, with the cut advantage growing with the chain length (more
post-success iterations saved).
"""

import pytest

from repro.core.pipeline import optimize
from repro.datalog import Database, parse
from repro.engine import EngineOptions, evaluate
from repro.workloads.graphs import chain

SIZES = [20, 40]
BIG_WIDTH = 60


def program():
    return parse(
        """
        answer(X) :- item(X, Y), path(U, V), big(V, W).
        path(U, V) :- edge(U, V).
        path(U, V) :- edge(U, W), path(W, V).
        ?- answer(X).
        """
    )


def make_db(n):
    return Database.from_dict(
        {
            "item": [(i, i + 1) for i in range(n)],
            "edge": chain(n),
            "big": [(v, w) for v in range(n) for w in range(BIG_WIDTH) if v % 2 == 0],
        }
    )


def configs(n):
    original = program()
    result = optimize(original, deletion=None)
    split_program = result.program
    return {
        "original": (original, EngineOptions()),
        "split": (split_program, EngineOptions()),
        "split+cut": (split_program, result.engine_options()),
    }


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("config", ["original", "split", "split+cut"])
def test_example2_cut(benchmark, n, config):
    prog, options = configs(n)[config]
    db = make_db(n)
    benchmark.group = f"example2 n={n}"
    result = benchmark(lambda: evaluate(prog, db, options))
    assert result.answers() == {(i,) for i in range(n)}
    if config == "split+cut":
        plain = evaluate(configs(n)["split"][0], db, configs(n)["split"][1]).stats
        orig = evaluate(configs(n)["original"][0], db).stats
        assert result.stats.rules_retired >= 1
        assert result.stats.rows_scanned < plain.rows_scanned
        assert result.stats.rows_scanned < orig.rows_scanned
