"""Experiment E3a/E4 — deleting the recursive rule of the projected
transitive-closure program (Sagiv's uniform-equivalence test,
Example 4).

After projection pushing, ``a@nd(X) :- p(X, Z), a@nd(Z)`` is redundant:
every source of an edge is already an answer via the exit rule.  The
paper deletes it by the uniform-equivalence chase.  The effect is
dramatic — the query becomes non-recursive, a single scan of ``p``.

Expected shape: the trimmed program runs in a single iteration with
zero duplicates; the advantage grows with the length of chains in the
data (iterations saved).
"""

import pytest

from repro.core import adorn, delete_rules, push_projections
from repro.datalog import Database
from repro.engine import evaluate
from repro.workloads.graphs import chain, random_digraph
from repro.workloads.paper_examples import example1_program

SIZES = [100, 400]


def make_db(n, seed=0):
    edges = sorted(set(chain(n)) | set(random_digraph(n, n, seed=seed)))
    return Database.from_dict({"p": edges})


def programs():
    projected = push_projections(adorn(example1_program()))
    trimmed = delete_rules(projected).program.to_program()
    return projected.to_program(), trimmed


@pytest.mark.parametrize("n", SIZES)
def test_projected_with_recursion(benchmark, n):
    projected, _ = programs()
    db = make_db(n)
    benchmark.group = f"example4 n={n}"
    benchmark(lambda: evaluate(projected, db))


@pytest.mark.parametrize("n", SIZES)
def test_recursion_deleted(benchmark, n):
    projected, trimmed = programs()
    db = make_db(n)
    benchmark.group = f"example4 n={n}"
    result = benchmark(lambda: evaluate(trimmed, db))
    reference = evaluate(projected, db)
    assert result.answers() == reference.answers()
    # non-recursive: a constant number of passes regardless of data,
    # and strictly less join/dedup work than with the recursive rule
    assert result.stats.iterations <= 3
    assert result.stats.rule_firings < reference.stats.rule_firings
    assert result.stats.rows_scanned < reference.stats.rows_scanned
    assert result.stats.duplicates <= reference.stats.duplicates
