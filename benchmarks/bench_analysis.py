"""Experiment ABSINT — the abstract-interpretation analyzer's cost.

Two questions, benchmarked separately:

``analyze``
    What does one :func:`repro.analysis.analyze_program` run cost over
    a measured EDB?  The answer must stay far below one evaluation of
    the same workload: the analyzer reads degree profiles (no interning,
    no index builds) and iterates small abstract lattices per SCC, so
    its cost scales with the program, not the data.
``analysis-fed``
    Does feeding the analyzer's propagated IDB sketches to the planner
    (``evaluate(..., analysis=...)``) pay for itself on skewed inputs?
    The ``small-hub`` family is the pinned plan-change fixture from
    the test suite scaled up: without analysis the planner treats the
    empty IDB relation as huge and leads with the hub side.

Soundness is asserted at the measurement, exactly like the planner
bench: answers and fact counts must be bit-identical with and without
the analysis overlay.
"""

import pytest

from repro.analysis import analyze_program
from repro.datalog import Database, parse
from repro.engine import EngineOptions, evaluate

HUB_KEYS, HUB_FANOUT, SMALL_ROWS = 500, 8, 20
TC_CHAIN = 120


def small_hub_program():
    return parse(
        """
        small(X) :- base(X).
        ans(X, Y) :- small(X), hub(X, Y).
        ?- ans(X, Y).
        """
    )


def small_hub_db():
    hub = [
        (i, 10_000 + i * HUB_FANOUT + j)
        for i in range(HUB_KEYS)
        for j in range(HUB_FANOUT)
    ]
    return Database.from_dict(
        {"base": [(i,) for i in range(SMALL_ROWS)], "hub": hub}
    )


def tc_program():
    return parse(
        """
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
        ?- tc(X, Y).
        """
    )


def tc_db():
    return Database.from_dict(
        {"edge": [(i, i + 1) for i in range(TC_CHAIN)]}
    )


WORKLOADS = {
    "small-hub": (small_hub_program, small_hub_db),
    "tc": (tc_program, tc_db),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_analyze(benchmark, workload):
    make_program, make_db = WORKLOADS[workload]
    prog = make_program()
    db = make_db()
    benchmark.group = f"absint {workload}"
    result = benchmark(lambda: analyze_program(prog, db))
    assert result.measured
    assert not result.report.errors


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("config", ["plain", "analysis-fed"])
def test_analysis_fed_evaluation(benchmark, workload, config):
    make_program, make_db = WORKLOADS[workload]
    prog = make_program()
    db = make_db()
    analysis = analyze_program(prog, db) if config == "analysis-fed" else None
    benchmark.group = f"absint eval {workload}"
    result = benchmark(
        lambda: evaluate(prog, db, EngineOptions(), analysis=analysis)
    )
    plain = evaluate(prog, make_db(), EngineOptions())
    assert result.answers() == plain.answers()
    assert result.stats.fact_counts == plain.stats.fact_counts
