"""Experiment E8 — compile-time emptiness detection (Example 8).

Example 8's deletion chain discovers at *compile time* that the answer
set is empty (the recursive ``p1`` has no exit rule once Lemma 5.1
removes it).  This bench compares answering the query by evaluation of
the original program vs. optimizing first: the optimizer's cascade
replaces an entire fixpoint computation with a static analysis.
"""

import pytest

from repro.core import delete_rules
from repro.engine import evaluate
from repro.workloads.edb import random_edb
from repro.workloads.paper_examples import example8_empty_adorned

SIZES = [(300, 30), (1200, 60)]


@pytest.mark.parametrize("rows,domain", SIZES)
def test_example8_evaluate_empty_program(benchmark, rows, domain):
    """Baseline: run the fixpoint to discover the empty answer."""
    original = example8_empty_adorned().to_program()
    db = random_edb(original, rows=rows, domain=domain, seed=8)
    benchmark.group = f"example8 rows={rows}"
    result = benchmark(lambda: evaluate(original, db))
    assert not result.answers()


@pytest.mark.parametrize("rows,domain", SIZES)
def test_example8_compile_time_detection(benchmark, rows, domain):
    """Optimizer: detect emptiness statically, then 'evaluate' the
    empty program (a no-op independent of the database size)."""
    adorned = example8_empty_adorned()
    db = random_edb(adorned.to_program(), rows=rows, domain=domain, seed=8)
    benchmark.group = f"example8 rows={rows}"

    def optimize_and_answer():
        report = delete_rules(adorned, use_chase=False, use_sagiv=False)
        assert len(report.program) == 0
        return frozenset()

    answers = benchmark(optimize_and_answer)
    assert answers == evaluate(adorned.to_program(), db).answers()
