"""Workloads for the durability benchmark (WAL overhead + recovery).

Two claims under measurement, both reported by ``run_report.py
durability`` into ``BENCH_durability.json``:

**WAL overhead** — appending every accepted batch to the write-ahead
log must not change what the engine *computes* (identical work counters
and fact sets vs a non-durable session over the same script), and at
the default ``fsync=batch`` policy the wall-clock cost per batch should
stay within ~10% of the non-durable run.  The work-counter equality is
the hard gate; the 10% wall figure is informational — it depends on
the filesystem under the bench, not on the engine.

**Recovery speed** — with a snapshot anchoring all but a ~1% tail of
the update script, :func:`repro.engine.recovery.recover` (snapshot
load + short WAL replay) should beat re-evaluating the final database
from scratch by a wide margin.  The hard gate is on join work: the
replay's join work, times the acceptance factor, must stay below the
from-scratch join work.  The >= 5x wall-clock speedup is again
informational.

The script shapes mirror the IVM benchmark's hot-partition regime:
updates land on a hot chain whose affected cone is a sliver of the
materialized fixpoint, so the replay tail is genuinely cheap and the
measurement isolates the durability machinery rather than the
propagation cost.
"""

from __future__ import annotations

from repro.datalog import Database, parse

__all__ = ["WORKLOADS", "DurabilityWorkload"]

TC = """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ?- tc(X, Y).
"""


def chain(n, offset=0):
    return [(offset + i, offset + i + 1) for i in range(n)]


class DurabilityWorkload:
    """A program, a base EDB factory, and a deterministic update script
    of small batches (the serve-loop shape the WAL sits under)."""

    def __init__(self, program, make_db, script):
        self.program = program
        self.make_db = make_db
        #: list of ("insert" | "retract", {pred: [rows]})
        self.script = script

    def final_rows(self):
        """Base-fact contents after the whole script (the from-scratch
        reference database for recovery)."""
        db = self.make_db()
        rows = {p: set(db.rows(p)) for p in db.predicates()}
        for kind, batch in self.script:
            for pred, batch_rows in batch.items():
                if kind == "insert":
                    rows.setdefault(pred, set()).update(map(tuple, batch_rows))
                else:
                    rows[pred].difference_update(map(tuple, batch_rows))
        return rows


def tc_serve(n, steps) -> DurabilityWorkload:
    """TC over four cold n-chains plus a hot tail that the script grows
    one edge per batch, with a retract of the freshest edge every
    fourth step — the steady small-batch stream ``repro serve`` sees."""
    cold, hot = 4, max(4, n // 10)
    spacing = n + steps + 2
    hot_offset = cold * spacing
    edges = [
        row for j in range(cold) for row in chain(n, offset=j * spacing)
    ]
    edges += chain(hot, offset=hot_offset)
    script = []
    tip = hot_offset + hot
    for step in range(steps):
        if step % 4 == 3:
            script.append(("retract", {"edge": [(tip - 1, tip)]}))
            tip -= 1
        else:
            script.append(("insert", {"edge": [(tip, tip + 1)]}))
            tip += 1
    return DurabilityWorkload(
        parse(TC),
        lambda: Database.from_dict({"edge": list(edges)}),
        script,
    )


def workloads() -> dict[str, DurabilityWorkload]:
    return {
        "tc-serve-n120": tc_serve(120, steps=24),
        "tc-serve-n240": tc_serve(240, steps=24),
    }


WORKLOADS = workloads()
