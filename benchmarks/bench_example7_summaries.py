"""Experiment E7 — the summary-based deletions of Example 7.

The Lemma 5.1 deletions (plus cascade) remove the whole ``p1`` layer
from the mutually recursive program; the reduced program answers the
query from ``p@nn`` and ``b1`` alone.  This bench measures both the
run-time effect and the compile-time cost of the summary machinery
(Algorithm 5.1 is a fixpoint over a finite summary space — it should
be cheap).
"""

import pytest

from repro.core import delete_rules
from repro.engine import evaluate
from repro.workloads.edb import random_edb
from repro.workloads.paper_examples import example7_adorned

SIZES = [(200, 40), (800, 80)]  # (rows per base relation, domain)


def programs():
    original = example7_adorned()
    reduced = delete_rules(
        original, method="lemma51", use_chase=False, use_sagiv=False
    ).program
    return original.to_program(), reduced.to_program()


@pytest.mark.parametrize("rows,domain", SIZES)
def test_example7_original(benchmark, rows, domain):
    original, _ = programs()
    db = random_edb(original, rows=rows, domain=domain, seed=7)
    benchmark.group = f"example7 rows={rows}"
    benchmark(lambda: evaluate(original, db))


@pytest.mark.parametrize("rows,domain", SIZES)
def test_example7_reduced(benchmark, rows, domain):
    original, reduced = programs()
    db = random_edb(original, rows=rows, domain=domain, seed=7)
    benchmark.group = f"example7 rows={rows}"
    result = benchmark(lambda: evaluate(reduced, db))
    reference = evaluate(original, db)
    assert result.answers() == reference.answers()
    assert result.stats.facts_derived <= reference.stats.facts_derived
    assert result.stats.rule_firings < reference.stats.rule_firings


def test_example7_compile_time(benchmark):
    original = example7_adorned()
    benchmark.group = "example7 compile"
    report = benchmark(
        lambda: delete_rules(original, method="lemma51", use_chase=False, use_sagiv=False)
    )
    assert len(report.program) == 3
