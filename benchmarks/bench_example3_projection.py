"""Experiment E3/P2 — projection pushing on transitive closure
(Example 3 and the section-3.2 performance claim).

The paper: reducing the arity of the recursive predicate "not only
reduces the facts produced but also reduces the duplicate elimination
cost significantly".  We run the right-linear reachable-sources query
(``query(X) :- a(X, Y)``) in its original binary form and after
projection pushing (unary recursion, per Example 3; rule deletion is
disabled here so the measured effect is projection alone), over graphs
where the closure is dense.

Expected shape: the unary program derives O(V) facts instead of O(V²),
with correspondingly fewer duplicates, and wins wall-clock by a factor
that grows with graph size.
"""

import pytest

from repro.core import adorn, push_projections
from repro.datalog import Database
from repro.engine import EngineOptions, evaluate
from repro.workloads.graphs import cycle, random_digraph
from repro.workloads.paper_examples import example1_program

SIZES = [40, 80, 160]


def make_db(n, seed=0):
    # a cycle plus random chords: every node reaches every node, so the
    # binary closure is the full V x V relation — the worst case the
    # projection avoids.
    edges = set(cycle(n)) | set(random_digraph(n, 2 * n, seed=seed))
    return Database.from_dict({"p": sorted(edges)})


def programs():
    original = example1_program()
    projected = push_projections(adorn(original)).to_program()
    return original, projected


@pytest.mark.parametrize("n", SIZES)
def test_original_binary_tc(benchmark, n):
    original, _ = programs()
    db = make_db(n)
    benchmark.group = f"example3 n={n}"
    result = benchmark(lambda: evaluate(original, db))
    assert result.answers()  # sanity: non-empty


@pytest.mark.parametrize("n", SIZES)
def test_projected_unary_tc(benchmark, n):
    original, projected = programs()
    db = make_db(n)
    benchmark.group = f"example3 n={n}"
    result = benchmark(lambda: evaluate(projected, db))
    # shape claims (paper section 3.2):
    reference = evaluate(original, db).stats
    optimized = result.stats
    assert optimized.facts_derived < reference.facts_derived / 4
    assert optimized.duplicates < reference.duplicates
    assert evaluate(projected, db).answers() == evaluate(original, db).answers()


@pytest.mark.parametrize("n", [SIZES[-1]])
def test_indexed_engine_vs_scan_baseline(benchmark, n):
    """Index ablation at the largest size: the indexed semi-naive
    engine must beat the seed scan engine by >= 5x on rows scanned
    while computing the identical answer set."""
    original, _ = programs()
    db = make_db(n)
    benchmark.group = f"example3 index ablation n={n}"
    indexed = benchmark(lambda: evaluate(original, db))
    scan = evaluate(original, db, EngineOptions(use_indexes=False))
    assert indexed.answers() == scan.answers()
    assert indexed.stats.rows_scanned * 5 <= scan.stats.rows_scanned
    assert indexed.stats.join_work * 5 <= scan.stats.join_work
    assert scan.stats.index_probes == 0  # the baseline never touches an index
