"""Shared helpers for the benchmark suite.

Every benchmark file regenerates one row of the experiment index in
DESIGN.md.  The paper reports no absolute numbers (it is a theory
paper), so each bench measures the *direction and magnitude* of one of
the paper's performance claims: wall-clock time via pytest-benchmark,
plus the engine's work counters (facts derived, duplicates, join
probes) which are the quantities the paper's arguments are actually
about.  Shape assertions (who wins) are made in the test body, so a
regression that flips a claim fails the suite rather than silently
producing a worse table.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datalog import Database, Program
from repro.engine import EngineOptions, EvalStats, evaluate

__all__ = [
    "measure",
    "Workload",
    "summarize",
    "index_ablation",
    "kernel_ablation",
    "scheduler_ablation",
    "join_work_line",
]


@dataclass
class Workload:
    """A named (program, database, options) evaluation target."""

    label: str
    program: Program
    db: Database
    options: EngineOptions = EngineOptions()

    def run(self):
        return evaluate(self.program, self.db, self.options)

    def scan_baseline(self) -> "Workload":
        """The same workload forced onto the ``--no-index`` scan engine."""
        return replace(
            self,
            label=f"{self.label} (scan)",
            options=replace(self.options, use_indexes=False),
        )

    def interpreter_baseline(self) -> "Workload":
        """The same workload on the plan interpreter (``--no-kernel``)."""
        return replace(
            self,
            label=f"{self.label} (interp)",
            options=replace(self.options, use_kernels=False),
        )


def measure(workload: Workload) -> EvalStats:
    """Evaluate once and return the work counters."""
    return workload.run().stats


def index_ablation(workload: Workload) -> tuple[EvalStats, EvalStats]:
    """Run *workload* indexed and as the scan baseline.

    Returns ``(indexed, scan)`` stats after asserting the two engines
    computed the identical fixpoint — the ablation behind the index
    benchmarks, so a divergence fails loudly here rather than skewing a
    table.
    """
    indexed = workload.run()
    scan = workload.scan_baseline().run()
    assert indexed.stats.fact_counts == scan.stats.fact_counts, (
        f"{workload.label}: indexed and scan engines disagree"
    )
    return indexed.stats, scan.stats


def kernel_ablation(workload: Workload) -> tuple[EvalStats, EvalStats]:
    """Run *workload* on compiled kernels and on the interpreter.

    Returns ``(kernel, interpreter)`` stats after asserting the two
    paths computed identical fixpoints *and* identical work counters —
    the kernels' core contract, enforced at the point of measurement.
    Each path runs on its own copy of the database so index warmth
    carried on shared base relations cannot skew ``index_builds``.
    """
    kernel = replace(workload, db=workload.db.copy()).run()
    interp = replace(
        workload.interpreter_baseline(), db=workload.db.copy()
    ).run()
    assert kernel.stats.fact_counts == interp.stats.fact_counts, (
        f"{workload.label}: kernel and interpreter engines disagree"
    )
    assert kernel.stats.as_dict(engine_invariant=True) == interp.stats.as_dict(
        engine_invariant=True
    ), f"{workload.label}: kernel changed the work counters"
    return kernel.stats, interp.stats


def scheduler_ablation(workload: Workload) -> tuple[EvalStats, EvalStats]:
    """Run *workload* under SCC scheduling and the monolithic loop.

    Returns ``(scheduled, monolithic)`` stats after asserting both
    reached the identical fixpoint.  Each path runs on its own copy of
    the database so index warmth on shared base relations cannot skew
    ``index_builds``.
    """
    scheduled = replace(workload, db=workload.db.copy()).run()
    monolithic = replace(
        workload,
        label=f"{workload.label} (monolithic)",
        db=workload.db.copy(),
        options=replace(workload.options, use_scc=False),
    ).run()
    assert scheduled.stats.fact_counts == monolithic.stats.fact_counts, (
        f"{workload.label}: scheduled and monolithic engines disagree"
    )
    return scheduled.stats, monolithic.stats


def summarize(label: str, stats: EvalStats) -> str:
    return f"{label:<28} {stats.summary()}"


def join_work_line(label: str, indexed: EvalStats, scan: EvalStats) -> str:
    """One comparison line: scanned rows, probes, and the speedup the
    indexes bought in join work (rows scanned + index probes)."""
    ratio = scan.join_work / max(1, indexed.join_work)
    return (
        f"{label:<28} scan_rows={scan.rows_scanned} "
        f"idx_rows={indexed.rows_scanned} idx_probes={indexed.index_probes} "
        f"builds={indexed.index_builds} join_work x{ratio:.1f}"
    )
