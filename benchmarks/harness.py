"""Shared helpers for the benchmark suite.

Every benchmark file regenerates one row of the experiment index in
DESIGN.md.  The paper reports no absolute numbers (it is a theory
paper), so each bench measures the *direction and magnitude* of one of
the paper's performance claims: wall-clock time via pytest-benchmark,
plus the engine's work counters (facts derived, duplicates, join
probes) which are the quantities the paper's arguments are actually
about.  Shape assertions (who wins) are made in the test body, so a
regression that flips a claim fails the suite rather than silently
producing a worse table.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datalog import Database, Program
from repro.engine import EngineOptions, EvalStats, evaluate

__all__ = ["measure", "Workload", "summarize", "index_ablation", "join_work_line"]


@dataclass
class Workload:
    """A named (program, database, options) evaluation target."""

    label: str
    program: Program
    db: Database
    options: EngineOptions = EngineOptions()

    def run(self):
        return evaluate(self.program, self.db, self.options)

    def scan_baseline(self) -> "Workload":
        """The same workload forced onto the ``--no-index`` scan engine."""
        return replace(
            self,
            label=f"{self.label} (scan)",
            options=replace(self.options, use_indexes=False),
        )


def measure(workload: Workload) -> EvalStats:
    """Evaluate once and return the work counters."""
    return workload.run().stats


def index_ablation(workload: Workload) -> tuple[EvalStats, EvalStats]:
    """Run *workload* indexed and as the scan baseline.

    Returns ``(indexed, scan)`` stats after asserting the two engines
    computed the identical fixpoint — the ablation behind the index
    benchmarks, so a divergence fails loudly here rather than skewing a
    table.
    """
    indexed = workload.run()
    scan = workload.scan_baseline().run()
    assert indexed.stats.fact_counts == scan.stats.fact_counts, (
        f"{workload.label}: indexed and scan engines disagree"
    )
    return indexed.stats, scan.stats


def summarize(label: str, stats: EvalStats) -> str:
    return f"{label:<28} {stats.summary()}"


def join_work_line(label: str, indexed: EvalStats, scan: EvalStats) -> str:
    """One comparison line: scanned rows, probes, and the speedup the
    indexes bought in join work (rows scanned + index probes)."""
    ratio = scan.join_work / max(1, indexed.join_work)
    return (
        f"{label:<28} scan_rows={scan.rows_scanned} "
        f"idx_rows={indexed.rows_scanned} idx_probes={indexed.index_probes} "
        f"builds={indexed.index_builds} join_work x{ratio:.1f}"
    )
