"""Shared helpers for the benchmark suite.

Every benchmark file regenerates one row of the experiment index in
DESIGN.md.  The paper reports no absolute numbers (it is a theory
paper), so each bench measures the *direction and magnitude* of one of
the paper's performance claims: wall-clock time via pytest-benchmark,
plus the engine's work counters (facts derived, duplicates, join
probes) which are the quantities the paper's arguments are actually
about.  Shape assertions (who wins) are made in the test body, so a
regression that flips a claim fails the suite rather than silently
producing a worse table.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog import Database, Program
from repro.engine import EngineOptions, EvalStats, evaluate

__all__ = ["measure", "Workload", "summarize"]


@dataclass
class Workload:
    """A named (program, database, options) evaluation target."""

    label: str
    program: Program
    db: Database
    options: EngineOptions = EngineOptions()

    def run(self):
        return evaluate(self.program, self.db, self.options)


def measure(workload: Workload) -> EvalStats:
    """Evaluate once and return the work counters."""
    return workload.run().stats


def summarize(label: str, stats: EvalStats) -> str:
    return f"{label:<28} {stats.summary()}"
