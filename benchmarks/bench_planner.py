"""Experiment PLAN — bound-driven cost-based join ordering vs the
greedy most-bound/smallest-first heuristic.

The claim: per-position **max-degree** profiles see hub skew that
relation sizes cannot.  The greedy heuristic orders a body by
(boundness, size) and walks straight into any workload where the
smallest relation feeds a high-degree hub; the cost model's DP search
(:mod:`repro.engine.cost`) prices each candidate order by its summed
intermediate-result upper bound — ``min(size, degree)`` per probe —
and routes the join through the functional side instead.

Workloads:

``fanout-trap`` (non-recursive)
    ``q(X, W) :- dim(X, Y), mid(Y, Z), sel(Z, W)`` where every ``dim``
    row shares one hub ``Y`` value and ``mid`` holds the hub's huge
    posting list.  Greedy starts from ``dim`` (smallest) and
    enumerates the posting list per row; the cost model starts from
    ``sel`` and probes ``mid`` on its key side (degree 1).
``skew-star`` (recursive)
    ``grow(X, Z) :- grow(X, Y), a(Y, Z), b(Y, Z)`` where ``a`` is
    smaller but fans out ``F``-fold per node and ``b`` is functional
    but padded larger.  Greedy resolves the post-frontier tie by size
    and enumerates ``a``'s fanout every round; the cost model reads
    ``deg_Y(b) = 1`` and probes ``b`` first.
``tc-parity`` (control)
    Plain transitive closure, where both planners must produce
    equivalent orders — the cost model is a strict improvement, not a
    trade.

Expected shape: identical fact counts everywhere; cost join work at
least 3x below greedy on both skewed families (the run_report gate),
and within noise of greedy on the parity control.  ``cost-replan``
additionally exercises the adaptive inter-round replanner at its most
aggressive cadence to show its bookkeeping does not erode the win.
"""

import pytest

from repro.datalog import Database, parse
from repro.engine import EngineOptions, evaluate

CONFIGS = {
    "greedy": {"use_cost_planner": False},
    "cost": {},
    "cost-replan": {"replan_rounds": 1},
}

#: the skewed families the >=3x join-work gate applies to
SKEWED = ("fanout-trap", "skew-star")

HUB_ROWS, DIM_ROWS, SEL_ROWS = 4000, 40, 60
CHAIN, FANOUT, PAD = 60, 20, 2000


def fanout_trap_program():
    return parse("q(X, W) :- dim(X, Y), mid(Y, Z), sel(Z, W).\n?- q(X, W).")


def fanout_trap_db():
    """One hub: ``dim`` all points at it, ``mid`` is its posting list,
    ``sel`` keeps a functional slice of the posting values."""
    return Database.from_dict(
        {
            "dim": [(f"d{i}", "hub") for i in range(DIM_ROWS)],
            "mid": [("hub", f"z{j}") for j in range(HUB_ROWS)],
            "sel": [(f"z{j}", f"w{j}") for j in range(SEL_ROWS)],
        }
    )


def skew_star_program():
    return parse(
        """
        grow(X, Y) :- seed(X, Y).
        grow(X, Z) :- grow(X, Y), a(Y, Z), b(Y, Z).
        ?- grow(X, Y).
        """
    )


def skew_star_db():
    """``a``: the chain plus ``FANOUT`` junk edges per node (small but
    fat).  ``b``: the chain padded with fresh-key rows (large but
    functional).  Size ranks them a < b; degree ranks them b < a."""
    chain = [(i, i + 1) for i in range(CHAIN)]
    a = chain + [
        (i, 10_000 + i * FANOUT + j)
        for i in range(CHAIN)
        for j in range(FANOUT)
    ]
    b = chain + [(100_000 + k, 200_000 + k) for k in range(PAD)]
    return Database.from_dict({"seed": [(0, 1)], "a": a, "b": b})


def tc_parity_program():
    return parse(
        """
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
        ?- tc(X, Y).
        """
    )


def tc_parity_db():
    return Database.from_dict({"edge": [(i, i + 1) for i in range(80)]})


WORKLOADS = {
    "fanout-trap": (fanout_trap_program, fanout_trap_db),
    "skew-star": (skew_star_program, skew_star_db),
    "tc-parity": (tc_parity_program, tc_parity_db),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("config", list(CONFIGS))
def test_planner(benchmark, workload, config):
    make_program, make_db = WORKLOADS[workload]
    prog = make_program()
    db = make_db()
    opts = EngineOptions(**CONFIGS[config])
    benchmark.group = f"planner {workload}"
    result = benchmark(lambda: evaluate(prog, db, opts))
    if config == "greedy":
        return
    greedy = evaluate(
        prog, make_db(), EngineOptions(use_cost_planner=False)
    )
    # the planner's soundness contract, asserted at the measurement
    assert result.answers() == greedy.answers()
    assert result.stats.fact_counts == greedy.stats.fact_counts
    if workload in SKEWED:
        assert result.stats.join_work * 3 <= greedy.stats.join_work
    else:
        # parity control: never more than marginally worse than greedy
        assert result.stats.join_work <= greedy.stats.join_work * 1.1
    if config == "cost-replan":
        assert result.stats.replans >= 1 or result.stats.iterations <= 2
